(* acecheck — the electrical rule engine (Ace_lint) over a layout or
   wirelist: configurable rule registry, waiver baselines, and text / JSON
   / SARIF reporting under one --diag-format flag. *)

module Lint = Ace_lint

(* Returns the circuit (None = unrecoverable), the CIF design when the
   input was a layout (needed for --hier), plus front-end diagnostics. *)
let load ~strict ~max_errors ~jobs ~tile path =
  match Cli_common.read_input path with
  | Error d -> (None, None, "", [ d ])
  | Ok text ->
      let from_cif () =
        match Cli_common.load_text ~strict ~max_errors text with
        | None, diags -> (None, None, text, diags)
        | Some design, diags ->
            let name = Filename.basename path in
            ( Some (Ace_core.Parallel.extract ~jobs ?tile ~name design),
              Some design,
              text,
              diags )
      in
      if Filename.check_suffix path ".cif" then from_cif ()
      else (
        match Ace_netlist.Wirelist.of_string text with
        | c -> (Some c, None, text, [])
        | exception Ace_netlist.Wirelist.Error _ ->
            (* fall back to CIF for suffix-less files *)
            from_cif ())

let fail_usage msg =
  prerr_endline ("acecheck: " ^ msg);
  exit 2

let print_rules () =
  Printf.printf "%-16s %-8s %s\n" "CODE" "DEFAULT" "SUMMARY";
  List.iter
    (fun (r : Lint.Rule.t) ->
      Printf.printf "%-16s %-8s %s\n" r.code
        (Lint.Finding.severity_to_string r.default)
        r.summary)
    Lint.Rules.all

(* --rules FILE first, then --rule code=level overrides, newest winning. *)
let build_config rules_file overrides =
  let cfg = Lint.Config.default in
  let cfg =
    match rules_file with
    | None -> cfg
    | Some path -> (
        match Cli_common.read_input path with
        | Error d -> fail_usage d.Ace_diag.Diag.message
        | Ok text -> (
            match Lint.Config.parse ~file:path cfg text with
            | Ok cfg -> cfg
            | Error m -> fail_usage m))
  in
  List.fold_left
    (fun cfg spec ->
      match Lint.Config.parse_binding cfg spec with
      | Ok cfg -> cfg
      | Error m -> fail_usage (Printf.sprintf "--rule %s: %s" spec m))
    cfg overrides

let sarif_rules () =
  List.map
    (fun (r : Lint.Rule.t) ->
      {
        Ace_diag.Sarif.id = r.code;
        summary = r.summary;
        help = r.doc;
        level = Lint.Finding.sarif_level r.default;
      })
    Lint.Rules.all

let run input vdd gnd verbose timing flow hier stats strict max_errors
    diag_format rules_file rule_overrides baseline_file write_baseline
    list_rules jobs tile trace =
  Cli_common.setup_trace trace;
  if list_rules then begin
    print_rules ();
    exit 0
  end;
  if jobs < 1 then fail_usage "-j must be at least 1";
  let tile =
    match tile with
    | None -> None
    | Some spec -> (
        match Ace_core.Parallel.tile_of_string spec with
        | Ok g -> Some g
        | Error msg -> fail_usage msg)
  in
  let config = build_config rules_file rule_overrides in
  let circuit, design, source, diags =
    load ~strict ~max_errors ~jobs ~tile input
  in
  let report = Cli_common.report ~format:diag_format ~tool:"acecheck" ~uri:input in
  match circuit with
  | None ->
      report ~source diags;
      exit 2
  | Some circuit ->
      (* --hier: re-derive the circuit through the hierarchical extractor
         and run the summarised (per-leaf-cell) dataflow analysis; the
         verdict is injected so the engine does not recompute it flat. *)
      let circuit, flow_arg, cache_stats =
        if hier then begin
          match design with
          | None -> fail_usage "--hier needs CIF input (a layout hierarchy)"
          | Some design ->
              let h, _ = Ace_hext.Hext.extract design in
              let circuit, verdict, cstats =
                Ace_flow.Summary.analyze ~vdd ~gnd h
              in
              (circuit, `Pre verdict, Some cstats)
        end
        else (circuit, (if flow then `Auto else `Off), None)
      in
      let findings = Lint.Engine.run ~config ~vdd ~gnd ~flow:flow_arg circuit in
      let fingerprinted =
        List.map (fun f -> (f, Lint.Finding.fingerprint circuit f)) findings
      in
      let baseline =
        match baseline_file with
        | None -> Lint.Baseline.empty
        | Some path -> (
            match Lint.Baseline.load path with
            | Ok b -> b
            | Error m -> fail_usage m)
      in
      let kept, waived =
        List.partition
          (fun (_, fp) -> not (Lint.Baseline.mem baseline fp))
          fingerprinted
      in
      (match write_baseline with
      | None -> ()
      | Some path ->
          let path =
            if path <> "" then path
            else
              match baseline_file with
              | Some p -> p
              | None ->
                  fail_usage
                    "--write-baseline needs a path (or --baseline to \
                     overwrite)"
          in
          Lint.Baseline.save path
            (Lint.Baseline.of_fingerprints (List.map snd fingerprinted)));
      (* Info findings are hidden unless -v, except in SARIF where CI wants
         the complete picture. *)
      let shown =
        List.filter
          (fun ((f : Lint.Finding.t), _) ->
            verbose
            || diag_format = Cli_common.Sarif
            || f.severity <> Lint.Finding.Info)
          kept
      in
      let annotated =
        List.map
          (fun (f, fp) -> (Lint.Finding.to_diag circuit f, fp))
          shown
      in
      let timing_result, timing_diags =
        if timing then Ace_analysis.Sta.analyze_checked ~vdd ~gnd circuit
        else (None, [])
      in
      let fingerprint d = List.assq_opt d annotated in
      report ~source ~rules:(sarif_rules ()) ~fingerprint
        (diags @ List.map fst annotated @ timing_diags);
      let errors, warnings, infos = Lint.Finding.summarize (List.map fst kept) in
      let summary =
        Printf.sprintf
          "%s: %d devices, %d nets — %d errors, %d warnings, %d infos%s" input
          (Ace_netlist.Circuit.device_count circuit)
          (Ace_netlist.Circuit.net_count circuit)
          errors warnings infos
          (match List.length waived with
          | 0 -> ""
          | n -> Printf.sprintf " (%d waived by baseline)" n)
      in
      let info_ppf =
        (* SARIF owns stdout: human chatter moves to stderr *)
        if diag_format = Cli_common.Sarif then Format.err_formatter
        else Format.std_formatter
      in
      Format.fprintf info_ppf "%s@." summary;
      if timing then begin
        match (timing_result, timing_diags) with
        | Some r, _ ->
            Format.fprintf info_ppf "@.timing: %a"
              (Ace_analysis.Sta.pp_result circuit) r
        | None, _ :: _ ->
            Format.fprintf info_ppf "@.timing: skipped (missing rail)@."
        | None, [] -> Format.fprintf info_ppf "@.timing: no gates recognized@."
      end;
      Format.pp_print_flush info_ppf ();
      (* -s: solver / summary-cache telemetry on stderr, like ace -s. *)
      if stats then begin
        (match flow_arg with
        | `Off -> Printf.eprintf "acecheck: flow analysis off (use --flow)\n"
        | (`Auto | `Pre _) as fa -> (
            let verdict =
              match fa with
              | `Pre v -> v
              | `Auto -> (
                  match
                    (Lint.Engine.find_rail circuit vdd,
                     Lint.Engine.find_rail circuit gnd)
                  with
                  | Some v, Some g when v <> g ->
                      Some (Ace_flow.Ternary.analyze circuit ~vdd:v ~gnd:g)
                  | _ -> None)
            in
            match verdict with
            | None -> Printf.eprintf "acecheck: flow analysis skipped (rails)\n"
            | Some v ->
                Format.eprintf "acecheck: flow %a@." Ace_flow.Solver.pp_stats
                  v.Ace_flow.Ternary.stats));
        (match cache_stats with
        | Some c ->
            Format.eprintf "acecheck: hier %a@." Ace_flow.Summary.pp_stats c
        | None -> ());
        Cli_common.print_counters ()
      end;
      if errors > 0 then exit 1
      else exit (Cli_common.exit_code ~diags:(diags @ timing_diags) ~usable:true)

open Cmdliner

let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"A .cif layout or a wirelist.")
let vdd = Arg.(value & opt string "VDD" & info [ "vdd" ] ~docv:"NAME")
let gnd = Arg.(value & opt string "GND" & info [ "gnd" ] ~docv:"NAME")
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print informational findings.")
let timing = Arg.(value & flag & info [ "timing" ] ~doc:"Run static timing analysis over the recognized gates.")

let flow =
  Arg.(
    value & flag
    & info [ "flow" ]
        ~doc:
          "Enable the ternary dataflow analysis feeding the flow-* rules \
           (contention, dead logic, charge storage, charge sharing, X \
           propagation).")

let hier =
  Arg.(
    value & flag
    & info [ "hier" ]
        ~doc:
          "CIF input only: extract hierarchically and run the dataflow \
           analysis with per-leaf-cell summaries (implies $(b,--flow)); \
           findings are identical to the flat run, repeated cells are \
           solved once.")

let stats =
  Arg.(
    value & flag
    & info [ "s"; "stats" ]
        ~doc:
          "Print solver and summary-cache telemetry on standard error.")

let rules_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"FILE"
        ~doc:
          "Rule configuration file: one $(i,key=value) per line, where \
           $(i,key) is a rule code bound to error|warn|info|off or an \
           engine parameter (lambda, max-fanout, max-pass-depth); $(b,#) \
           starts a comment.")

let rule_overrides =
  Arg.(
    value & opt_all string []
    & info [ "rule" ] ~docv:"CODE=LEVEL"
        ~doc:
          "Override one rule, e.g. $(b,--rule ratio=error) or $(b,--rule \
           isolated=off).  Repeatable; applied after $(b,--rules).")

let baseline_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Waiver baseline: findings whose fingerprints appear in $(docv) \
           are suppressed, so only new problems are reported.")

let write_baseline =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:
          "Write the fingerprints of every finding of this run to \
           $(docv) (use $(b,--write-baseline=FILE)); with no value, \
           overwrite the $(b,--baseline) file.")

let list_rules =
  Arg.(
    value & flag
    & info [ "list-rules" ]
        ~doc:"Print the rule registry (code, default severity, summary) and exit.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Extract CIF input over $(docv) worker domains before checking \
           (see $(b,ace -j)); ignored for wirelist input.")

let tile =
  Arg.(
    value
    & opt (some string) None
    & info [ "tile" ] ~docv:"CxR"
        ~doc:
          "Tile grid for the extraction (see $(b,ace --tile)); ignored for \
           wirelist input.")

let cmd =
  Cmd.v
    (Cmd.info "acecheck"
       ~doc:
         "Electrical rule engine: ratio checks, malformed transistors, \
          stuck signals, pass-network and labelling analyses")
    Term.(
      const run $ input $ vdd $ gnd $ verbose $ timing $ flow $ hier $ stats
      $ Cli_common.strict_t $ Cli_common.max_errors_t
      $ Cli_common.diag_format_t $ rules_file $ rule_overrides $ baseline_file
      $ write_baseline $ list_rules $ jobs $ tile $ Cli_common.trace_t)

let () = exit (Cmd.eval cmd)
