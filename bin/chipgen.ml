(* chipgen — synthetic benchmark chips as CIF. *)

open Cmdliner

let emit output file =
  match output with
  | None -> print_string (Ace_cif.Writer.to_string file)
  | Some path -> Ace_cif.Writer.to_file path file

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CIF file (default stdout).")

let mesh_cmd =
  let rows = Arg.(value & opt int 16 & info [ "rows" ] ~docv:"N") in
  let cols = Arg.(value & opt int 16 & info [ "cols" ] ~docv:"N") in
  Cmd.v (Cmd.info "mesh" ~doc:"rows x cols single-transistor array (testram character)")
    Term.(
      const (fun rows cols output ->
          emit output (Ace_workloads.Arrays.mesh ~rows ~cols ()))
      $ rows $ cols $ output)

let array_cmd =
  let cells = Arg.(value & opt int 1024 & info [ "cells" ] ~docv:"N" ~doc:"Power of 4.") in
  Cmd.v (Cmd.info "array" ~doc:"binary-tree square array (HEXT Table 4-1)")
    Term.(
      const (fun cells output ->
          emit output (Ace_workloads.Arrays.square_array_tree ~cells ()))
      $ cells $ output)

let chain_cmd =
  let n = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N") in
  Cmd.v (Cmd.info "chain" ~doc:"chain of n inverters")
    Term.(
      const (fun n output -> emit output (Ace_workloads.Chips.inverter_chain ~n ()))
      $ n $ output)

let inverter_cmd =
  Cmd.v (Cmd.info "inverter" ~doc:"the single labeled inverter of ACE Fig. 3-3")
    Term.(const (fun output -> emit output (Ace_workloads.Chips.single_inverter ())) $ output)

let cell_cmd =
  let cell_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"One of: inverter nand2 nor2 mux2 latch.")
  in
  let generate name output =
    let file =
      match name with
      | "inverter" -> Some (Ace_workloads.Chips.single_inverter ())
      | "nand2" -> Some (Ace_workloads.Chips.single_nand2 ())
      | "nor2" -> Some (Ace_workloads.Chips.single_nor2 ())
      | "mux2" -> Some (Ace_workloads.Chips.single_mux2 ())
      | "latch" -> Some (Ace_workloads.Chips.latch ())
      | _ -> None
    in
    match file with
    | None ->
        Printf.eprintf "unknown cell %s\n" name;
        exit 2
    | Some f -> emit output f
  in
  Cmd.v
    (Cmd.info "cell" ~doc:"a single labeled leaf cell (LVS golden fixtures)")
    Term.(const generate $ cell_arg $ output)

let random_cmd =
  let cells = Arg.(value & opt int 100 & info [ "cells" ] ~docv:"N") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  Cmd.v (Cmd.info "random" ~doc:"jittered random logic (irregular character)")
    Term.(
      const (fun cells seed output ->
          emit output (Ace_workloads.Chips.random_logic ~cells ~seed ()))
      $ cells $ seed $ output)

let datapath_cmd =
  let bits = Arg.(value & opt int 8 & info [ "bits" ] ~docv:"N") in
  let stages = Arg.(value & opt int 16 & info [ "stages" ] ~docv:"N") in
  Cmd.v (Cmd.info "datapath" ~doc:"bit-sliced datapath of chained inverters")
    Term.(
      const (fun bits stages output ->
          emit output (Ace_workloads.Chips.datapath ~bits ~stages ()))
      $ bits $ stages $ output)

let chip_cmd =
  let chip_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"One of: cherry dchip schip2 testram psc scheme81 riscb.")
  in
  let scale = Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S") in
  let generate name scale output =
    match
      List.find_opt
        (fun (r : Ace_workloads.Chips.recipe) -> r.chip_name = name)
        Ace_workloads.Chips.paper_suite
    with
    | None ->
        Printf.eprintf "unknown chip %s\n" name;
        exit 2
    | Some r -> emit output (Ace_cif.Design.ast (r.build ~scale))
  in
  Cmd.v (Cmd.info "chip" ~doc:"a paper-suite benchmark chip")
    Term.(const generate $ chip_arg $ scale $ output)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "chipgen" ~doc:"Generate synthetic NMOS benchmark chips")
          [ mesh_cmd; array_cmd; chain_cmd; inverter_cmd; cell_cmd;
            random_cmd; datapath_cmd; chip_cmd ]))
