(* acedrc — scanline design-rule checking of a CIF layout. *)

let run input lambda strict max_errors diag_format =
  let loaded = Cli_common.load ~strict ~max_errors input in
  Cli_common.report ~format:diag_format ~source:loaded.Cli_common.source
    loaded.diags;
  match loaded.design with
  | None -> exit 2
  | Some design ->
      let rules = Ace_drc.Rules.mead_conway ~lambda () in
      let violations = Ace_drc.Checker.check ~rules design in
      List.iter
        (fun v -> Format.printf "%a@." Ace_drc.Checker.pp_violation v)
        violations;
      Printf.printf "%s: %d design-rule violations\n" input
        (List.length violations);
      if violations <> [] then exit 1
      else exit (Cli_common.exit_code ~diags:loaded.diags ~usable:true)

open Cmdliner

let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"CIF")

let lambda =
  Arg.(value & opt int 250 & info [ "lambda" ] ~docv:"CU"
         ~doc:"λ in centimicrons (Mead–Conway: 250).")

let cmd =
  Cmd.v
    (Cmd.info "acedrc"
       ~doc:"Mead-Conway design-rule checker (widths, spacings, contacts, gate overhang)")
    Term.(
      const run $ input $ lambda $ Cli_common.strict_t
      $ Cli_common.max_errors_t $ Cli_common.diag_format_t)

let () = exit (Cmd.eval cmd)
