(* acedrc — scanline design-rule checking of a CIF layout.  Violations are
   structured diagnostics (code "drc-<rule>") rendered by the same
   --diag-format machinery as the front-end: text, JSON, or SARIF. *)

let sarif_rules () =
  List.map
    (fun (id, summary) ->
      { Ace_diag.Sarif.id; summary; help = summary; level = "error" })
    Ace_drc.Checker.rule_info

let run input lambda strict max_errors diag_format trace =
  Cli_common.setup_trace trace;
  let loaded = Cli_common.load ~strict ~max_errors input in
  let report =
    Cli_common.report ~format:diag_format ~tool:"acedrc" ~uri:input
      ~rules:(sarif_rules ())
  in
  match loaded.Cli_common.design with
  | None ->
      report ~source:loaded.Cli_common.source loaded.diags;
      exit 2
  | Some design ->
      let rules = Ace_drc.Rules.mead_conway ~lambda () in
      let violations = Ace_drc.Checker.check ~rules design in
      let vdiags = List.map Ace_drc.Checker.to_diag violations in
      report ~source:loaded.source (loaded.diags @ vdiags);
      let summary =
        Printf.sprintf "%s: %d design-rule violations" input
          (List.length violations)
      in
      if diag_format = Cli_common.Sarif then prerr_endline summary
      else print_endline summary;
      if violations <> [] then exit 1
      else exit (Cli_common.exit_code ~diags:loaded.diags ~usable:true)

open Cmdliner

let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"CIF")

let lambda =
  Arg.(value & opt int 250 & info [ "lambda" ] ~docv:"CU"
         ~doc:"λ in centimicrons (Mead–Conway: 250).")

let cmd =
  Cmd.v
    (Cmd.info "acedrc"
       ~doc:"Mead-Conway design-rule checker (widths, spacings, contacts, gate overhang)")
    Term.(
      const run $ input $ lambda $ Cli_common.strict_t
      $ Cli_common.max_errors_t $ Cli_common.diag_format_t
      $ Cli_common.trace_t)

let () = exit (Cmd.eval cmd)
