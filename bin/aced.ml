(* aced — the extraction daemon: newline-JSON requests (extract / lint /
   flow / ping / stats / cache-gc / shutdown) over a Unix-domain socket,
   or over stdin/stdout with --once.  Results are cached crash-safely on
   disk; see Ace_serve for the protocol and robustness contracts. *)

module Serve = Ace_serve

let fail_usage msg =
  prerr_endline ("aced: " ^ msg);
  exit 2

let build_faults specs =
  match Serve.Faults.of_specs (Serve.Faults.env_specs () @ specs) with
  | Ok f -> f
  | Error m -> fail_usage m

let open_cache ~no_cache ~cache_dir ~cache_max_mb ~faults =
  if no_cache then None
  else
    match
      Serve.Cache.open_dir ?max_mb:cache_max_mb ~faults cache_dir
    with
    | Ok c -> Some c
    | Error m -> fail_usage m

let serve socket once cache_dir no_cache cache_max_mb jobs max_inflight
    max_request_bytes deadline_ms retry_after_ms fault_specs vdd gnd trace =
  Cli_common.setup_trace trace;
  let faults = build_faults fault_specs in
  let cache = open_cache ~no_cache ~cache_dir ~cache_max_mb ~faults in
  let config =
    Serve.Server.config ~jobs ?cache ~max_request_bytes ~max_inflight
      ~default_deadline_ms:deadline_ms ~retry_after_ms ~faults ~vdd ~gnd ()
  in
  let t = Serve.Server.create config in
  match (socket, once) with
  | None, false -> fail_usage "specify --socket PATH or --once"
  | Some _, true -> fail_usage "--socket and --once are mutually exclusive"
  | None, true ->
      Serve.Server.serve_once t;
      0
  | Some path, false -> (
      match Serve.Server.serve_socket t path with
      | () -> 0
      | exception Unix.Unix_error (e, _, _) ->
          fail_usage
            (Printf.sprintf "cannot listen on %s: %s" path
               (Unix.error_message e)))

let cache_gc cache_dir cache_max_mb =
  let faults = Serve.Faults.none () in
  match Serve.Cache.open_dir ?max_mb:cache_max_mb ~faults cache_dir with
  | Error m -> fail_usage m
  | Ok c ->
      let g = Serve.Cache.gc c in
      Printf.printf
        "{\"removed_tmp\":%d,\"removed_quarantined\":%d,\"evicted\":%d,\"kept\":%d,\"bytes\":%d}\n"
        g.Serve.Cache.removed_tmp g.Serve.Cache.removed_quarantined
        g.Serve.Cache.evicted g.Serve.Cache.kept g.Serve.Cache.bytes;
      0

open Cmdliner

let cache_dir_t =
  Arg.(
    value & opt string ".aced-cache"
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for the persistent extraction cache (created if \
           missing).  Entries are content-addressed and checksummed; \
           corrupted entries are quarantined and recomputed.")

let cache_max_mb_t =
  Arg.(
    value & opt (some int) None
    & info [ "cache-max-mb" ] ~docv:"MB"
        ~doc:
          "Cap the cache at $(docv) mebibytes; least-recently-used \
           entries are evicted after each store (default: unbounded).")

let socket_t =
  Arg.(
    value & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen on a Unix-domain socket at $(docv) (a stale socket \
           file is replaced), one thread per connection.")

let once_t =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:
          "Serve a single session on stdin/stdout instead of a socket: \
           one JSON request per input line, one reply per output line, \
           until EOF.")

let no_cache_t =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the persistent cache.")

let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Default (and maximum) parallel extraction shards per request \
           (see $(b,ace -j)); requests may ask for fewer.")

let max_inflight_t =
  Arg.(
    value & opt int 4
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Admit at most $(docv) concurrent compute requests; beyond \
           that, reply $(b,overloaded) with a $(b,retry_after_ms) hint.")

let max_request_bytes_t =
  Arg.(
    value & opt int (8 * 1024 * 1024)
    & info [ "max-request-bytes" ] ~docv:"N"
        ~doc:
          "Reject request lines longer than $(docv) bytes (they are \
           drained, never buffered).")

let deadline_ms_t =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline; requests may override with \
           their $(b,deadline_ms) field.  0 disables.")

let retry_after_ms_t =
  Arg.(
    value & opt int 100
    & info [ "retry-after-ms" ] ~docv:"MS"
        ~doc:"The back-off hint carried by $(b,overloaded) replies.")

let fault_t =
  Arg.(
    value & opt_all string []
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Inject a fault for robustness testing (repeatable; also read \
           comma-separated from $(b,ACE_FAULTS)): \
           $(b,cache-torn-write), $(b,cache-bit-flip), \
           $(b,slow-request=MS), $(b,shard-raise), $(b,oom-soft).")

let vdd_t =
  Arg.(
    value & opt string "VDD"
    & info [ "vdd" ] ~docv:"NET" ~doc:"Default power rail for lint/flow.")

let gnd_t =
  Arg.(
    value & opt string "GND"
    & info [ "gnd" ] ~docv:"NET" ~doc:"Default ground rail for lint/flow.")

let serve_term =
  Term.(
    const serve $ socket_t $ once_t $ cache_dir_t $ no_cache_t
    $ cache_max_mb_t $ jobs_t $ max_inflight_t $ max_request_bytes_t
    $ deadline_ms_t $ retry_after_ms_t $ fault_t $ vdd_t $ gnd_t
    $ Cli_common.trace_t)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the extraction daemon (the default command).")
    serve_term

let gc_cmd =
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Sweep the cache offline: remove temp and quarantined files and \
          enforce the byte cap; prints a JSON summary.")
    Term.(const cache_gc $ cache_dir_t $ cache_max_mb_t)

let cache_cmd =
  Cmd.group (Cmd.info "cache" ~doc:"Cache maintenance.") [ gc_cmd ]

let cmd =
  Cmd.group ~default:serve_term
    (Cmd.info "aced"
       ~doc:
         "Fault-tolerant extraction daemon: newline-JSON protocol, \
          per-request deadlines, overload backpressure, and a crash-safe \
          persistent result cache")
    [ serve_cmd; cache_cmd ]

let () = exit (Cmd.eval' cmd)
