(* Shared CLI plumbing for the CIF front-end binaries: input reading with
   clean I/O diagnostics, the --strict / --max-errors / --diag-format
   flags, diagnostic reporting and the 0/1/2 exit-code convention
   (0 = clean, 1 = diagnostics but usable output, 2 = unrecoverable). *)

module Diag = Ace_diag.Diag
module Sarif = Ace_diag.Sarif

type diag_format = Text | Json | Sarif

(* Read a file (or stdin for "-"), never letting a Sys_error escape: a
   missing path, a directory, or a read failure becomes an [io-error]
   diagnostic. *)
let read_input = function
  | "-" -> Ok (In_channel.input_all stdin)
  | path when (try Sys.is_directory path with Sys_error _ -> false) ->
      Error (Diag.errorf ~code:"io-error" "%s: is a directory" path)
  | path -> (
      match open_in_bin path with
      | exception Sys_error m -> Error (Diag.error ~code:"io-error" m)
      | ic -> (
          match
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with
          | s -> Ok s
          | exception Sys_error m -> Error (Diag.error ~code:"io-error" m)
          | exception End_of_file ->
              Error
                (Diag.errorf ~code:"io-error" "%s: truncated read" path)))

(* CIF-specific input reading: regular files are memory-mapped by
   [Parser.open_file] (zero-copy lexing); "-" and non-regular paths drain
   the stream as before.  Same error discipline as {!read_input}. *)
let read_cif_input = function
  | "-" -> Ok (Ace_cif.Parser.input_of_string (In_channel.input_all stdin))
  | path when (try Sys.is_directory path with Sys_error _ -> false) ->
      Error (Diag.errorf ~code:"io-error" "%s: is a directory" path)
  | path -> (
      match Ace_cif.Parser.open_file path with
      | input -> Ok input
      | exception Sys_error m -> Error (Diag.error ~code:"io-error" m))

(* Parse and check a CIF input.  [None] means unrecoverable (strict mode
   hit an error); lenient mode always yields a design. *)
let load_input ~strict ~max_errors ?quantum input =
  if strict then
    match Ace_cif.Parser.parse_input input with
    | exception Ace_cif.Parser.Error { position; message } ->
        let stop = min (Ace_cif.Parser.input_length input) (position + 1) in
        ( None,
          [
            Diag.error
              ~span:{ Diag.start = position; stop }
              ~code:"cif-parse-error" message;
          ] )
    | ast -> (
        match Ace_cif.Design.of_ast ?quantum ast with
        | exception Ace_cif.Design.Semantic_error m ->
            (None, [ Diag.error ~code:"sem-error" m ])
        | design -> (Some design, []))
  else begin
    let ast, pdiags = Ace_cif.Parser.parse_input_lenient ~max_errors input in
    let design, sdiags =
      Ace_cif.Design.of_ast_lenient ?quantum ~max_errors ast
    in
    (Some design, pdiags @ sdiags)
  end

let load_text ~strict ~max_errors ?quantum text =
  load_input ~strict ~max_errors ?quantum (Ace_cif.Parser.input_of_string text)

type loaded = {
  source : string;
  design : Ace_cif.Design.t option;  (** [None] = unrecoverable *)
  diags : Diag.t list;
}

let load ~strict ~max_errors ?quantum path =
  match read_cif_input path with
  | Error d -> { source = ""; design = None; diags = [ d ] }
  | Ok input ->
      let design, diags = load_input ~strict ~max_errors ?quantum input in
      (* Diag rendering is the only consumer of [source] (caret context
         needs both a span and the source); on the common clean run we
         skip copying the mapping out of the page cache. *)
      let source =
        if diags = [] then "" else Ace_cif.Parser.input_to_string input
      in
      { source; design; diags }

(* Render diagnostics under the run's one --diag-format flag: text/JSON go
   line-by-line to stderr; SARIF emits a single complete 2.1.0 log on
   stdout (what CI ingests).  [rules] supplies tool.driver.rules metadata
   and [fingerprint] per-diagnostic partialFingerprints for SARIF. *)
let report ~format ?source ?(tool = "ace") ?uri ?(rules = [])
    ?(fingerprint = fun _ -> None) diags =
  match format with
  | Text | Json ->
      List.iter
        (fun d ->
          prerr_endline
            (match format with
            | Text -> Diag.to_string ?source d
            | Json | Sarif -> Diag.to_json ?source d))
        diags
  | Sarif ->
      let results =
        List.map
          (fun d -> Ace_diag.Sarif.of_diag ?source ?uri ?fingerprint:(fingerprint d) d)
          diags
      in
      print_endline (Ace_diag.Sarif.render ~tool ~rules results)

let exit_code ~diags ~usable =
  if not usable then 2 else if diags = [] then 0 else 1

module Trace = Ace_trace.Trace

(* --trace FILE: start a trace session now and write the Chrome JSON when
   the process ends.  The CLIs call [exit] from arbitrary depths, so the
   writer must ride [at_exit]; a scope-based finalizer would never run. *)
let setup_trace = function
  | None -> ()
  | Some path ->
      Trace.start ();
      at_exit (fun () ->
          let session = Trace.stop () in
          try Ace_trace.Chrome.write path session
          with Sys_error m ->
            Printf.eprintf "warning: cannot write trace file: %s\n" m)

(* The `-s` counter table (always available: counters accumulate even
   without --trace). *)
let print_counters ?(oc = stderr) () =
  Trace.print_counter_table ~oc (Trace.counter_totals ())

open Cmdliner

let strict_t =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Stop at the first malformed command or semantic error (exit code \
           2) instead of recovering and reporting every problem.")

let max_errors_t =
  Arg.(
    value & opt int 100
    & info [ "max-errors" ] ~docv:"N"
        ~doc:
          "Stop collecting diagnostics after $(docv) errors (0 = unbounded).")

let diag_format_t =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json); ("sarif", Sarif) ]) Text
    & info [ "diag-format" ] ~docv:"FMT"
        ~doc:
          "How to render diagnostics: $(b,text) (human-readable with caret \
           context, stderr), $(b,json) (one JSON object per line, stderr) \
           or $(b,sarif) (a complete SARIF 2.1.0 log on stdout, for CI \
           annotation).")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured trace of this run (spans, counters, \
           GC/allocation samples; one track per worker domain) and write \
           it to $(docv) as Chrome trace-event JSON, loadable in Perfetto \
           or chrome://tracing.  Tracing never changes outputs, \
           diagnostics or exit codes.")
