(* ace — flat edge-based circuit extraction: CIF in, CMU wirelist out. *)

let run input output geometry spice name quantum stats jobs tile strict
    max_errors diag_format trace =
  Cli_common.setup_trace trace;
  let loaded = Cli_common.load ~strict ~max_errors ~quantum input in
  match loaded.Cli_common.design with
  | None ->
      Cli_common.report ~format:diag_format ~tool:"ace" ~uri:input
        ~source:loaded.source loaded.diags;
      exit 2
  | Some design ->
      let name =
        match name with
        | Some n -> n
        | None -> if input = "-" then "chip" else Filename.basename input
      in
      if jobs < 1 then begin
        prerr_endline "ace: -j must be at least 1";
        exit 2
      end;
      let tile =
        match tile with
        | None -> None
        | Some spec -> (
            match Ace_core.Parallel.tile_of_string spec with
            | Ok g -> Some g
            | Error msg ->
                prerr_endline ("ace: " ^ msg);
                exit 2)
      in
      (* geometry output is per-net box lists, which the shard stitcher
         does not carry through the hierarchy: -g forces a flat run *)
      let jobs, tile = if geometry then (1, None) else (jobs, tile) in
      let t0 = Unix.gettimeofday () in
      let circuit, run_stats =
        if jobs > 1 || tile <> None then
          Ace_core.Parallel.extract_with_stats ~jobs ?tile ~name design
        else
          let circuit, st =
            Ace_core.Extractor.extract_with_stats ~emit_geometry:geometry
              ~name design
          in
          ( circuit,
            {
              Ace_core.Parallel.jobs = 1;
              shards = [];
              stitch_seconds = 0.0;
              boxes = st.Ace_core.Extractor.boxes;
              stops = st.stops;
              max_active = st.max_active;
              timing = st.timing;
              warnings = st.warnings;
            } )
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      let oc = match output with None -> stdout | Some p -> open_out p in
      if spice then output_string oc (Ace_netlist.Spice.to_string circuit)
      else Ace_netlist.Wirelist.to_channel ~emit_geometry:geometry oc circuit;
      if output <> None then close_out oc;
      let diags = loaded.diags @ run_stats.Ace_core.Parallel.warnings in
      Cli_common.report ~format:diag_format ~tool:"ace" ~uri:input
        ~source:loaded.source diags;
      if stats then begin
        let devs = Ace_netlist.Circuit.device_count circuit in
        Printf.eprintf
          "%s: %d devices, %d nets, %d boxes, %d scanline stops, peak %d \
           active, %.3f s (%.0f devices/s, %.0f boxes/s)\n"
          name devs
          (Ace_netlist.Circuit.net_count circuit)
          run_stats.boxes run_stats.stops run_stats.max_active elapsed
          (float_of_int devs /. elapsed)
          (float_of_int run_stats.boxes /. elapsed);
        if run_stats.Ace_core.Parallel.shards <> [] then begin
          Printf.eprintf
            "parallel: %d workers, %d tiles, stitch %.3f s, balance %.2f\n"
            run_stats.Ace_core.Parallel.jobs
            (List.length run_stats.Ace_core.Parallel.shards)
            run_stats.stitch_seconds
            (Ace_core.Parallel.balance run_stats);
          List.iteri
            (fun i (s : Ace_core.Parallel.shard) ->
              Printf.eprintf
                "  tile %d: x [%d, %d) y [%d, %d), %d boxes, %d stops, %d \
                 devices (+%d partial), %.3f s\n"
                (i + 1) s.s_window.Ace_geom.Box.l s.s_window.Ace_geom.Box.r
                s.s_window.Ace_geom.Box.b s.s_window.Ace_geom.Box.t s.s_boxes
                s.s_stops s.s_devices s.s_partials s.s_seconds)
            run_stats.shards
        end;
        Format.eprintf "layout: %a@." Ace_cif.Stats.pp
          (Ace_cif.Stats.of_design design);
        Cli_common.print_counters ()
      end;
      exit (Cli_common.exit_code ~diags ~usable:true)

open Cmdliner

let input =
  Arg.(value & pos 0 string "-" & info [] ~docv:"CIF" ~doc:"Input CIF file (- for stdin).")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the wirelist here instead of stdout.")

let geometry =
  Arg.(value & flag & info [ "g"; "geometry" ] ~doc:"Output the geometry of each net and device (normally suppressed, as in the paper).  Forces a flat (-j 1) run.")

let spice =
  Arg.(value & flag & info [ "spice" ] ~doc:"Emit a SPICE deck instead of the CMU wirelist format.")

let part_name =
  Arg.(value & opt (some string) None & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Wirelist part name (defaults to the file name).")

let quantum =
  Arg.(value & opt int 125 & info [ "quantum" ] ~docv:"CU" ~doc:"Strip height (centimicrons) for approximating non-manhattan geometry.")

let stats =
  Arg.(value & flag & info [ "s"; "stats" ] ~doc:"Print run statistics to stderr.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Extract over $(docv) worker domains.  Without $(b,--tile) the \
           chip splits into $(docv) full-height vertical strips; tiles are \
           scheduled by work-stealing and the per-tile wirelists are \
           stitched across the seams.  The output is byte-identical to the \
           default flat run ($(b,-j 1)).")

let tile =
  Arg.(
    value
    & opt (some string) None
    & info [ "tile" ] ~docv:"CxR"
        ~doc:
          "Split the chip into an explicit $(docv) grid of tiles (e.g. \
           $(b,4x2) is four columns by two rows) instead of $(b,-j) \
           vertical strips.  Engages the tiled path even at $(b,-j 1); the \
           output is byte-identical for every grid.")

let cmd =
  Cmd.v
    (Cmd.info "ace" ~doc:"Flat edge-based NMOS circuit extractor (Gupta, DAC 1983)")
    Term.(
      const run $ input $ output $ geometry $ spice $ part_name $ quantum
      $ stats $ jobs $ tile $ Cli_common.strict_t $ Cli_common.max_errors_t
      $ Cli_common.diag_format_t $ Cli_common.trace_t)

let () = exit (Cmd.eval cmd)
