(* ace — flat edge-based circuit extraction: CIF in, CMU wirelist out. *)

let run input output geometry spice name quantum stats strict max_errors
    diag_format =
  let loaded = Cli_common.load ~strict ~max_errors ~quantum input in
  match loaded.Cli_common.design with
  | None ->
      Cli_common.report ~format:diag_format ~tool:"ace" ~uri:input
        ~source:loaded.source loaded.diags;
      exit 2
  | Some design ->
      let name =
        match name with
        | Some n -> n
        | None -> if input = "-" then "chip" else Filename.basename input
      in
      let t0 = Unix.gettimeofday () in
      let circuit, run_stats =
        Ace_core.Extractor.extract_with_stats ~emit_geometry:geometry ~name
          design
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      let oc = match output with None -> stdout | Some p -> open_out p in
      if spice then output_string oc (Ace_netlist.Spice.to_string circuit)
      else Ace_netlist.Wirelist.to_channel ~emit_geometry:geometry oc circuit;
      if output <> None then close_out oc;
      let diags = loaded.diags @ run_stats.Ace_core.Extractor.warnings in
      Cli_common.report ~format:diag_format ~tool:"ace" ~uri:input
        ~source:loaded.source diags;
      if stats then begin
        let devs = Ace_netlist.Circuit.device_count circuit in
        Printf.eprintf
          "%s: %d devices, %d nets, %d boxes, %d scanline stops, peak %d \
           active, %.3f s (%.0f devices/s, %.0f boxes/s)\n"
          name devs
          (Ace_netlist.Circuit.net_count circuit)
          run_stats.boxes run_stats.stops run_stats.max_active elapsed
          (float_of_int devs /. elapsed)
          (float_of_int run_stats.boxes /. elapsed);
        Format.eprintf "layout: %a@." Ace_cif.Stats.pp
          (Ace_cif.Stats.of_design design)
      end;
      exit (Cli_common.exit_code ~diags ~usable:true)

open Cmdliner

let input =
  Arg.(value & pos 0 string "-" & info [] ~docv:"CIF" ~doc:"Input CIF file (- for stdin).")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the wirelist here instead of stdout.")

let geometry =
  Arg.(value & flag & info [ "g"; "geometry" ] ~doc:"Output the geometry of each net and device (normally suppressed, as in the paper).")

let spice =
  Arg.(value & flag & info [ "spice" ] ~doc:"Emit a SPICE deck instead of the CMU wirelist format.")

let part_name =
  Arg.(value & opt (some string) None & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Wirelist part name (defaults to the file name).")

let quantum =
  Arg.(value & opt int 125 & info [ "quantum" ] ~docv:"CU" ~doc:"Strip height (centimicrons) for approximating non-manhattan geometry.")

let stats =
  Arg.(value & flag & info [ "s"; "stats" ] ~doc:"Print run statistics to stderr.")

let cmd =
  Cmd.v
    (Cmd.info "ace" ~doc:"Flat edge-based NMOS circuit extractor (Gupta, DAC 1983)")
    Term.(
      const run $ input $ output $ geometry $ spice $ part_name $ quantum
      $ stats $ Cli_common.strict_t $ Cli_common.max_errors_t
      $ Cli_common.diag_format_t)

let () = exit (Cmd.eval cmd)
