(* wlcmp — wirelist equivalence comparison, on the shared CLI conventions
   (input via Cli_common, --diag-format).  Exit codes are part of the
   contract (dune golden rules depend on them): 0 = equivalent,
   1 = distinct, 2 = unreadable input, 3 = inconclusive. *)

module Diag = Ace_diag.Diag

let run a b with_sizes with_names diag_format trace =
  Cli_common.setup_trace trace;
  let report = Cli_common.report ~format:diag_format ~tool:"wlcmp" in
  let load path =
    match Cli_common.read_input path with
    | Error d ->
        report [ d ];
        exit 2
    | Ok text -> (
        match Ace_netlist.Wirelist.of_string text with
        | c -> c
        | exception Ace_netlist.Wirelist.Error m ->
            report [ Diag.errorf ~code:"wirelist-error" "%s: %s" path m ];
            exit 2)
  in
  let ca = load a and cb = load b in
  match Ace_netlist.Compare.compare ~with_sizes ~with_names ca cb with
  | Ace_netlist.Compare.Equivalent ->
      Printf.printf "%s and %s are equivalent (%d devices, %d nets)\n" a b
        (Ace_netlist.Circuit.device_count ca)
        (Ace_netlist.Circuit.net_count ca);
      exit 0
  | Ace_netlist.Compare.Distinct reason ->
      (* Count mismatches get their own stable code so CI can tell "the
         extractor dropped devices" from "same counts, different graph". *)
      let code =
        match reason with
        | Ace_netlist.Compare.Device_counts _ | Ace_netlist.Compare.Net_counts _
          ->
            "wl-count-mismatch"
        | Ace_netlist.Compare.Structure _ -> "wl-distinct"
      in
      report
        [
          Diag.errorf ~code "%s vs %s: %s" a b
            (Ace_netlist.Compare.reason_to_string reason);
        ];
      exit 1
  | Ace_netlist.Compare.Inconclusive why ->
      report [ Diag.warningf ~code:"wl-inconclusive" "%s vs %s: %s" a b why ];
      exit 3

open Cmdliner

let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"A")
let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"B")

let with_sizes =
  Arg.(value & flag & info [ "sizes" ] ~doc:"Require matching transistor L/W.")

let with_names =
  Arg.(value & flag & info [ "names" ] ~doc:"Require matching net names.")

let cmd =
  Cmd.v
    (Cmd.info "wlcmp" ~doc:"Compare two wirelists for circuit equivalence")
    Term.(
      const run $ a $ b $ with_sizes $ with_names $ Cli_common.diag_format_t
      $ Cli_common.trace_t)

let () = exit (Cmd.eval cmd)
