(* hext — hierarchical circuit extraction: CIF in, hierarchical wirelist out. *)

let read_input = function
  | "-" -> Ace_cif.Parser.input_of_string (In_channel.input_all stdin)
  | path -> Ace_cif.Parser.open_file path

let run input output flat spice leaf_limit no_memo stats trace =
  Cli_common.setup_trace trace;
  let cif = read_input input in
  match Ace_cif.Parser.parse_input cif with
  | exception Ace_cif.Parser.Error { position; message } ->
      prerr_endline
        (Ace_cif.Parser.describe_error
           ~source:(Ace_cif.Parser.input_to_string cif)
           ~position ~message);
      exit 2
  | ast -> (
      match Ace_cif.Design.of_ast ast with
      | exception Ace_cif.Design.Semantic_error m ->
          Printf.eprintf "semantic error: %s\n" m;
          exit 2
      | design ->
          let t0 = Unix.gettimeofday () in
          let hier, run_stats =
            Ace_hext.Hext.extract ~leaf_limit ~memoize:(not no_memo) design
          in
          let elapsed = Unix.gettimeofday () -. t0 in
          let oc = match output with None -> stdout | Some p -> open_out p in
          if spice then output_string oc (Ace_netlist.Spice.of_hier hier)
          else if flat then
            Ace_netlist.Wirelist.to_channel oc (Ace_netlist.Hier.flatten hier)
          else output_string oc (Ace_netlist.Hier.to_string hier);
          if output <> None then close_out oc;
          if stats then begin
            Printf.eprintf
              "hext: %d devices, %d windows extracted (%d redundant skipped), \
               %d composes (%d memoized), front-end %.3f s, back-end %.3f s \
               (%.0f%% composing), total %.3f s\n"
              (Ace_netlist.Hier.flat_device_count hier)
              run_stats.Ace_hext.Hext.leaf_extractions run_stats.window_hits
              run_stats.compose_calls run_stats.compose_hits
              run_stats.front_end_seconds
              (Ace_hext.Hext.back_end_seconds run_stats)
              (100.0 *. Ace_hext.Hext.compose_fraction run_stats)
              elapsed;
            Cli_common.print_counters ()
          end)

open Cmdliner

let input =
  Arg.(value & pos 0 string "-" & info [] ~docv:"CIF" ~doc:"Input CIF file (- for stdin).")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

let flat =
  Arg.(value & flag & info [ "flat" ] ~doc:"Flatten the hierarchical wirelist before printing (most CAD tools want a flat wirelist).")

let spice =
  Arg.(value & flag & info [ "spice" ] ~doc:"Emit a hierarchical SPICE deck (.SUBCKT per window).")

let leaf_limit =
  Arg.(value & opt int 512 & info [ "leaf-limit" ] ~docv:"N" ~doc:"Maximum boxes per leaf window.")

let no_memo =
  Arg.(value & flag & info [ "no-memo" ] ~doc:"Disable the redundant-window and compose tables (ablation).")

let stats =
  Arg.(value & flag & info [ "s"; "stats" ] ~doc:"Print run statistics to stderr.")

let cmd =
  Cmd.v
    (Cmd.info "hext" ~doc:"Hierarchical NMOS circuit extractor (Gupta & Hon, 1982)")
    Term.(
      const run $ input $ output $ flat $ spice $ leaf_limit $ no_memo $ stats
      $ Cli_common.trace_t)

let () = exit (Cmd.eval cmd)
