open Ace_netlist
open Ace_analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let extract_workload file =
  Ace_core.Extractor.extract ~emit_geometry:true
    (Ace_cif.Design.of_ast file)

let inverter () = extract_workload (Ace_workloads.Chips.single_inverter ())
let chain n = extract_workload (Ace_workloads.Chips.inverter_chain ~n ())

let has_code code findings =
  List.exists (fun (f : Static_check.finding) -> f.code = code) findings

(* ------------------------------------------------------------------ *)
(* Static checker                                                       *)
(* ------------------------------------------------------------------ *)

let test_clean_inverter () =
  let findings = Static_check.check (inverter ()) in
  let errors, _, _ = Static_check.summarize findings in
  check_int "no errors" 0 errors;
  check "no ratio complaint (k = 4)" false (has_code "ratio" findings)

let test_power_short () =
  let c = inverter () in
  (* merge VDD and GND by renaming: point both names at one net *)
  let v = Circuit.find_net c "VDD" in
  let shorted =
    {
      c with
      Circuit.nets =
        Array.mapi
          (fun i (n : Circuit.net) ->
            if i = v then { n with names = [ "GND"; "VDD" ] }
            else if List.mem "GND" n.names then { n with names = [] }
            else n)
          c.Circuit.nets;
    }
  in
  check "short reported" true (has_code "power-short" (Static_check.check shorted))

let test_bad_ratio () =
  let c = inverter () in
  (* weaken the pull-down: double its length *)
  let weak =
    {
      c with
      Circuit.devices =
        Array.map
          (fun (d : Circuit.device) ->
            match d.dtype with
            | Ace_tech.Nmos.Enhancement -> { d with length = 2 * d.length }
            | Ace_tech.Nmos.Depletion -> d)
          c.Circuit.devices;
    }
  in
  check "ratio reported" true (has_code "ratio" (Static_check.check weak))

let test_malformed_device () =
  let c = inverter () in
  let v = Circuit.find_net c "VDD" in
  let broken =
    {
      c with
      Circuit.devices =
        Array.append c.Circuit.devices
          [|
            {
              Circuit.dtype = Ace_tech.Nmos.Enhancement;
              gate = v;
              source = v;
              drain = v;
              length = 2;
              width = 2;
              location = Ace_geom.Point.origin;
              geometry = [];
            };
          |];
    }
  in
  check "malformed reported" true (has_code "malformed" (Static_check.check broken))

let test_undriven_gate () =
  let c = inverter () in
  (* cut the pull-down off GND by retargeting its source to a fresh net *)
  let n = Circuit.net_count c in
  let floating =
    {
      c with
      Circuit.nets =
        Array.append c.Circuit.nets
          [| { Circuit.names = []; location = Ace_geom.Point.origin; geometry = [] } |];
      devices =
        Array.map
          (fun (d : Circuit.device) ->
            match d.dtype with
            | Ace_tech.Nmos.Enhancement -> { d with gate = n }
            | Ace_tech.Nmos.Depletion -> d)
          c.Circuit.devices;
    }
  in
  let findings = Static_check.check floating in
  check "floating gate reported" true (has_code "floating-gate" findings)

let test_stuck_node () =
  (* an output with only a pull-up that also gates something: stuck at 1 *)
  let net names = { Circuit.names; location = Ace_geom.Point.origin; geometry = [] } in
  let c =
    {
      Circuit.name = "stuck";
      nets = [| net [ "VDD" ]; net [ "N" ]; net [ "GND" ]; net [] |];
      devices =
        [|
          {
            Circuit.dtype = Ace_tech.Nmos.Depletion;
            gate = 1; source = 0; drain = 1; length = 8; width = 2;
            location = Ace_geom.Point.origin; geometry = [];
          };
          {
            Circuit.dtype = Ace_tech.Nmos.Enhancement;
            gate = 1; source = 2; drain = 3; length = 2; width = 2;
            location = Ace_geom.Point.origin; geometry = [];
          };
        |];
    }
  in
  check "stuck reported" true (has_code "stuck" (Static_check.check c))

let test_missing_rails () =
  let c = Ace_core.Extractor.extract_boxes
      [ (Ace_tech.Layer.Metal, Tutil.box ~l:0 ~b:0 ~r:4 ~t:4) ]
  in
  let findings = Static_check.check c in
  check "rail skip reported" true (has_code "no-rail" findings);
  check "isolated net reported" true (has_code "isolated" findings)

(* ------------------------------------------------------------------ *)
(* Switch-level simulator                                               *)
(* ------------------------------------------------------------------ *)

let test_sim_inverter () =
  let sim = Sim.create (inverter ()) ~vdd:"VDD" ~gnd:"GND" in
  (match Sim.eval sim ~inputs:[ ("INP", Sim.High) ] ~outputs:[ "OUT" ] with
  | Some [ (_, v) ] -> check "1 -> 0" true (v = Sim.Low)
  | _ -> Alcotest.fail "no result");
  match Sim.eval sim ~inputs:[ ("INP", Sim.Low) ] ~outputs:[ "OUT" ] with
  | Some [ (_, v) ] -> check "0 -> 1" true (v = Sim.High)
  | _ -> Alcotest.fail "no result"

let test_sim_chain () =
  let c = chain 5 in
  let sim = Sim.create c ~vdd:"VDD" ~gnd:"GND" in
  (* five inversions flip the value *)
  (match Sim.eval sim ~inputs:[ ("INP", Sim.High) ] ~outputs:[ "OUT" ] with
  | Some [ (_, v) ] -> check "odd chain inverts" true (v = Sim.Low)
  | _ -> Alcotest.fail "no result");
  let c6 = chain 6 in
  let sim6 = Sim.create c6 ~vdd:"VDD" ~gnd:"GND" in
  match Sim.eval sim6 ~inputs:[ ("INP", Sim.High) ] ~outputs:[ "OUT" ] with
  | Some [ (_, v) ] -> check "even chain follows" true (v = Sim.High)
  | _ -> Alcotest.fail "no result"

let test_sim_unknown_propagates () =
  let sim = Sim.create (inverter ()) ~vdd:"VDD" ~gnd:"GND" in
  match Sim.eval sim ~inputs:[ ("INP", Sim.Unknown) ] ~outputs:[ "OUT" ] with
  | Some [ (_, v) ] -> check "X in, X out" true (v = Sim.Unknown)
  | _ -> Alcotest.fail "no result"

let test_sim_nand_truth_table () =
  (* hand-built NAND: two series pull-downs *)
  let net names = { Circuit.names; location = Ace_geom.Point.origin; geometry = [] } in
  let dev dtype gate source drain =
    {
      Circuit.dtype; gate; source; drain; length = 2; width = 2;
      location = Ace_geom.Point.origin; geometry = [];
    }
  in
  let c =
    {
      Circuit.name = "nand";
      nets =
        [| net [ "VDD" ]; net [ "OUT" ]; net [ "A" ]; net [ "B" ];
           net [] (* mid *); net [ "GND" ] |];
      devices =
        [|
          { (dev Ace_tech.Nmos.Depletion 1 0 1) with length = 8 };
          dev Ace_tech.Nmos.Enhancement 2 1 4;
          dev Ace_tech.Nmos.Enhancement 3 4 5;
        |];
    }
  in
  let sim = Sim.create c ~vdd:"VDD" ~gnd:"GND" in
  List.iter
    (fun (a, b, expect) ->
      match
        Sim.eval sim ~inputs:[ ("A", a); ("B", b) ] ~outputs:[ "OUT" ]
      with
      | Some [ (_, v) ] ->
          check
            (Printf.sprintf "nand(%s,%s)" (Sim.level_to_string a)
               (Sim.level_to_string b))
            true (v = expect)
      | _ -> Alcotest.fail "no result")
    [
      (Sim.Low, Sim.Low, Sim.High);
      (Sim.Low, Sim.High, Sim.High);
      (Sim.High, Sim.Low, Sim.High);
      (Sim.High, Sim.High, Sim.Low);
    ]

let test_sim_oscillation_detected () =
  (* a ring oscillator: inverter with output fed back to its input can
     never settle *)
  let net names = { Circuit.names; location = Ace_geom.Point.origin; geometry = [] } in
  let c =
    {
      Circuit.name = "ring";
      nets = [| net [ "VDD" ]; net [ "N" ]; net [ "GND" ] |];
      devices =
        [|
          {
            Circuit.dtype = Ace_tech.Nmos.Depletion;
            gate = 1; source = 0; drain = 1; length = 8; width = 2;
            location = Ace_geom.Point.origin; geometry = [];
          };
          {
            Circuit.dtype = Ace_tech.Nmos.Enhancement;
            gate = 1; source = 1; drain = 2; length = 2; width = 2;
            location = Ace_geom.Point.origin; geometry = [];
          };
        |];
    }
  in
  let sim = Sim.create c ~vdd:"VDD" ~gnd:"GND" in
  (* force N high first so the feedback has an edge to chew on *)
  Sim.set_input sim "N" Sim.High;
  check "stabilizes while forced" true (Sim.stabilize sim);
  Sim.release_input sim "N";
  check "oscillates when released" false (Sim.stabilize ~max_steps:50 sim)

let test_sim_charge_storage () =
  (* pass gate: drive a node high, close the gate; the node keeps its
     charge *)
  let net names = { Circuit.names; location = Ace_geom.Point.origin; geometry = [] } in
  let c =
    {
      Circuit.name = "dyn";
      nets = [| net [ "VDD" ]; net [ "G" ]; net [ "S" ]; net [ "D" ]; net [ "GND" ] |];
      devices =
        [|
          {
            Circuit.dtype = Ace_tech.Nmos.Enhancement;
            gate = 1; source = 2; drain = 3; length = 2; width = 2;
            location = Ace_geom.Point.origin; geometry = [];
          };
        |];
    }
  in
  let sim = Sim.create c ~vdd:"VDD" ~gnd:"GND" in
  Sim.set_input sim "S" Sim.High;
  Sim.set_input sim "G" Sim.High;
  check "settled" true (Sim.stabilize sim);
  check "passed through" true (Sim.value sim "D" = Sim.High);
  (* turn the gate off first (dynamic-logic order), then move the source *)
  Sim.set_input sim "G" Sim.Low;
  check "settled with gate off" true (Sim.stabilize sim);
  Sim.set_input sim "S" Sim.Low;
  check "settled again" true (Sim.stabilize sim);
  check "charge retained" true (Sim.value sim "D" = Sim.High)

(* ------------------------------------------------------------------ *)
(* Gate recognition                                                     *)
(* ------------------------------------------------------------------ *)

let gate_cell (cell : ?labels:bool -> _) =
  let b = Ace_workloads.Builder.create () in
  let sym = Ace_workloads.Builder.symbol b (cell ~labels:true b) in
  extract_workload
    (Ace_workloads.Builder.file b
       [ Ace_workloads.Builder.call b sym ~dx:0 ~dy:0 ])

let test_recognize_inverter () =
  let r = Gates.recognize (inverter ()) in
  check_int "one gate" 1 (List.length r.Gates.gates);
  check_int "both devices matched" 2 r.matched_devices;
  match r.gates with
  | [ Gates.Inverter { input; output } ] ->
      let c = inverter () in
      check_int "input is INP" (Circuit.find_net c "INP") input;
      check_int "output is OUT" (Circuit.find_net c "OUT") output
  | _ -> Alcotest.fail "expected an inverter"

let test_recognize_nand () =
  let c = gate_cell Ace_workloads.Cells.nand2 in
  let r = Gates.recognize c in
  (match r.Gates.gates with
  | [ Gates.Nand { inputs; output } ] ->
      check_int "two inputs" 2 (List.length inputs);
      check_int "output is OUT" (Circuit.find_net c "OUT") output;
      let names = List.sort compare (List.map (Circuit.net_display_name c) inputs) in
      check "inputs are A and B" true (names = [ "A"; "B" ])
  | _ -> Alcotest.fail "expected a NAND");
  check_int "all devices matched" 3 r.matched_devices

let test_recognize_nor () =
  let c = gate_cell Ace_workloads.Cells.nor2 in
  let r = Gates.recognize c in
  match r.Gates.gates with
  | [ Gates.Nor { inputs; output } ] ->
      check_int "two inputs" 2 (List.length inputs);
      check_int "output is OUT" (Circuit.find_net c "OUT") output
  | _ -> Alcotest.fail "expected a NOR"

let test_recognize_chain () =
  let c = chain 6 in
  let r = Gates.recognize c in
  check_int "six inverters" 6 (List.length r.Gates.gates);
  check_int "all matched" 12 r.matched_devices;
  check "all are inverters" true
    (List.for_all
       (function Gates.Inverter _ -> true | Gates.Nand _ | Gates.Nor _ -> false)
       r.gates)

let test_recognize_nand3 () =
  (* three series pull-downs: a hand-built 3-input NAND *)
  let net names = { Circuit.names; location = Ace_geom.Point.origin; geometry = [] } in
  let dev dtype gate source drain =
    {
      Circuit.dtype; gate; source; drain; length = 2; width = 2;
      location = Ace_geom.Point.origin; geometry = [];
    }
  in
  let c =
    {
      Circuit.name = "nand3";
      nets =
        [| net [ "VDD" ]; net [ "OUT" ]; net [ "A" ]; net [ "B" ]; net [ "C" ];
           net [] (* m1 *); net [] (* m2 *); net [ "GND" ] |];
      devices =
        [|
          { (dev Ace_tech.Nmos.Depletion 1 0 1) with length = 12 };
          dev Ace_tech.Nmos.Enhancement 2 1 5;
          dev Ace_tech.Nmos.Enhancement 3 5 6;
          dev Ace_tech.Nmos.Enhancement 4 6 7;
        |];
    }
  in
  let r = Gates.recognize c in
  (match r.Gates.gates with
  | [ Gates.Nand { inputs; _ } ] ->
      check_int "three inputs" 3 (List.length inputs);
      let names = List.sort compare (List.map (Circuit.net_display_name c) inputs) in
      check "A B C" true (names = [ "A"; "B"; "C" ])
  | _ -> Alcotest.fail "expected NAND3");
  check_int "all four matched" 4 r.matched_devices

let test_recognize_leaves_pass_gates () =
  (* a mesh of bare transistors has no loads: nothing is recognized *)
  let c =
    Ace_core.Extractor.extract
      (Ace_cif.Design.of_ast (Ace_workloads.Arrays.mesh ~rows:3 ~cols:3 ()))
  in
  let r = Gates.recognize c in
  check_int "no gates" 0 (List.length r.Gates.gates);
  check_int "nothing matched" 0 r.matched_devices

(* ------------------------------------------------------------------ *)
(* Parasitics                                                           *)
(* ------------------------------------------------------------------ *)

let test_parasitics_basic () =
  let c = inverter () in
  let out = Circuit.find_net c "OUT" in
  let p = Parasitics.net_parasitics c out in
  check "positive cap" true (p.Parasitics.cap_ff > 0.0);
  check "gate load counted" true (p.Parasitics.gate_cap_ff > 0.0);
  check "has diffusion and poly area" true
    (List.length p.Parasitics.area_by_layer >= 2)

let test_parasitics_needs_geometry () =
  let c = Ace_core.Extractor.extract (Ace_cif.Design.of_ast (Ace_workloads.Chips.single_inverter ())) in
  let out = Circuit.find_net c "OUT" in
  check "raises without geometry" true
    (match Parasitics.net_parasitics c out with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_parasitics_monotone () =
  (* a longer wire has more capacitance *)
  let wire len =
    Ace_core.Extractor.extract_boxes ~emit_geometry:true
      ~labels:[ { Ace_cif.Design.name = "W"; position = Ace_geom.Point.make 1 1; layer = None } ]
      [ (Ace_tech.Layer.Metal, Tutil.box ~l:0 ~b:0 ~r:len ~t:250) ]
  in
  let short = wire 2500 and long = wire 25000 in
  let cap c = (Parasitics.net_parasitics c (Circuit.find_net c "W")).Parasitics.cap_ff in
  check "longer wire, more cap" true (cap long > cap short);
  check "10x length = 10x cap" true
    (abs_float (cap long /. cap short -. 10.0) < 0.01)

let test_device_parasitics () =
  let c = inverter () in
  let dep =
    Array.to_list c.Circuit.devices
    |> List.find (fun (d : Circuit.device) -> d.dtype = Ace_tech.Nmos.Depletion)
  in
  (* pull-up L/W = 4 -> 40 kΩ at the 10 kΩ/square default *)
  check "pull-up resistance" true
    (abs_float (Parasitics.device_resistance dep -. 40_000.0) < 1.0);
  check "gate cap positive" true (Parasitics.device_gate_cap dep > 0.0)

let test_rc_delay () =
  let c = chain 3 in
  let out = Circuit.find_net c "OUT" in
  (* find the depletion device driving OUT *)
  let driver = ref (-1) in
  Array.iteri
    (fun i (d : Circuit.device) ->
      if d.dtype = Ace_tech.Nmos.Depletion && (d.source = out || d.drain = out)
      then driver := i)
    c.Circuit.devices;
  check "driver found" true (!driver >= 0);
  let delay = Parasitics.rc_delay_seconds c ~driver:!driver ~net:out in
  check "delay in plausible ns range" true (delay > 1e-12 && delay < 1e-6)

(* ------------------------------------------------------------------ *)
(* Static timing analysis                                               *)
(* ------------------------------------------------------------------ *)

let test_sta_chain_depth () =
  List.iter
    (fun n ->
      let c =
        Ace_core.Extractor.extract ~emit_geometry:true
          (Ace_cif.Design.of_ast (Ace_workloads.Chips.inverter_chain ~n ()))
      in
      match Sta.analyze c with
      | Some r ->
          check_int
            (Printf.sprintf "chain %d: path has %d stages" n n)
            n
            (List.length r.Sta.critical_path);
          check "positive delay" true (r.critical_delay_s > 0.0);
          check "no feedback" false r.has_feedback;
          (* arrival times increase along the path *)
          let rec increasing = function
            | (a : Sta.timed_gate) :: (b : Sta.timed_gate) :: rest ->
                a.arrival_s < b.arrival_s && increasing (b :: rest)
            | _ -> true
          in
          check "arrivals increase" true (increasing r.critical_path)
      | None -> Alcotest.fail "expected gates")
    [ 1; 3; 7 ]

let test_sta_delay_monotone () =
  let delay n =
    let c =
      Ace_core.Extractor.extract ~emit_geometry:true
        (Ace_cif.Design.of_ast (Ace_workloads.Chips.inverter_chain ~n ()))
    in
    match Sta.analyze c with
    | Some r -> r.Sta.critical_delay_s
    | None -> 0.0
  in
  check "longer chain, longer delay" true (delay 8 > delay 2)

let test_sta_feedback_detected () =
  (* two cross-coupled inverters: a latch *)
  let net names = { Circuit.names; location = Ace_geom.Point.origin; geometry = [] } in
  let dev dtype gate source drain =
    {
      Circuit.dtype; gate; source; drain; length = 2; width = 2;
      location = Ace_geom.Point.origin; geometry = [];
    }
  in
  let c =
    {
      Circuit.name = "latch";
      nets = [| net [ "VDD" ]; net [ "Q" ]; net [ "QB" ]; net [ "GND" ] |];
      devices =
        [|
          { (dev Ace_tech.Nmos.Depletion 1 0 1) with length = 8 };
          { (dev Ace_tech.Nmos.Depletion 2 0 2) with length = 8 };
          dev Ace_tech.Nmos.Enhancement 2 1 3 (* QB gates the Q pulldown *);
          dev Ace_tech.Nmos.Enhancement 1 2 3 (* Q gates the QB pulldown *);
        |];
    }
  in
  match Sta.analyze c with
  | Some r -> check "feedback flagged" true r.Sta.has_feedback
  | None -> Alcotest.fail "expected gates"

let test_sta_feedback_ring () =
  (* three-stage ring oscillator: the gate graph is one cycle *)
  let net names = { Circuit.names; location = Ace_geom.Point.origin; geometry = [] } in
  let dev dtype gate source drain =
    {
      Circuit.dtype; gate; source; drain; length = 2; width = 2;
      location = Ace_geom.Point.origin; geometry = [];
    }
  in
  let c =
    {
      Circuit.name = "ring3";
      nets = [| net [ "VDD" ]; net [ "N1" ]; net [ "N2" ]; net [ "N3" ]; net [ "GND" ] |];
      devices =
        [|
          { (dev Ace_tech.Nmos.Depletion 1 0 1) with length = 8 };
          { (dev Ace_tech.Nmos.Depletion 2 0 2) with length = 8 };
          { (dev Ace_tech.Nmos.Depletion 3 0 3) with length = 8 };
          dev Ace_tech.Nmos.Enhancement 3 1 4 (* N3 -> N1 stage *);
          dev Ace_tech.Nmos.Enhancement 1 2 4 (* N1 -> N2 stage *);
          dev Ace_tech.Nmos.Enhancement 2 3 4 (* N2 -> N3 stage *);
        |];
    }
  in
  match Sta.analyze c with
  | Some r -> check "ring feedback flagged" true r.Sta.has_feedback
  | None -> Alcotest.fail "expected gates"

let test_sta_missing_rail_diag () =
  let c = inverter () in
  let result, diags = Sta.analyze_checked ~vdd:"VCC" c in
  check "no result without rail" true (result = None);
  check "missing-rail diagnostic" true
    (List.exists
       (fun (d : Ace_diag.Diag.t) -> d.Ace_diag.Diag.code = "missing-rail")
       diags);
  let result, diags = Sta.analyze_checked c in
  check "clean run has no diags" true (diags = []);
  check "clean run analyzes" true (result <> None)

let test_sta_no_gates () =
  let c =
    Ace_core.Extractor.extract
      (Ace_cif.Design.of_ast (Ace_workloads.Arrays.mesh ~rows:2 ~cols:2 ()))
  in
  check "no result on pass arrays" true (Sta.analyze c = None)

let test_sim_missing_rail_diag () =
  let c = inverter () in
  (match Sim.create_result c ~vdd:"VCC" ~gnd:"GND" with
  | Ok _ -> Alcotest.fail "expected missing-rail error"
  | Error d ->
      check "missing-rail code" true (d.Ace_diag.Diag.code = "missing-rail"));
  check "create still raises Not_found" true
    (match Sim.create c ~vdd:"VCC" ~gnd:"GND" with
    | exception Not_found -> true
    | _ -> false)

let test_sim_case_insensitive_rails () =
  (* rails labelled "Vdd"/"gnd" still resolve (case-insensitive fallback) *)
  let c = inverter () in
  let relabelled =
    {
      c with
      Circuit.nets =
        Array.map
          (fun (n : Circuit.net) ->
            let swap = function
              | "VDD" -> "Vdd"
              | "GND" -> "gnd"
              | s -> s
            in
            { n with Circuit.names = List.map swap n.Circuit.names })
          c.Circuit.nets;
    }
  in
  match Sim.create_result relabelled ~vdd:"VDD" ~gnd:"GND" with
  | Error _ -> Alcotest.fail "case-insensitive rail lookup failed"
  | Ok sim -> (
      match
        Sim.eval sim ~inputs:[ ("INP", Sim.Low) ] ~outputs:[ "OUT" ]
      with
      | Some [ (_, Sim.High) ] -> ()
      | _ -> Alcotest.fail "inverter did not simulate")

let test_parasitics_all_nets_total () =
  (* extracted without geometry: every net is skipped, summarised in one
     "no-geometry" hint, and the call never raises *)
  let bare =
    Ace_core.Extractor.extract
      (Ace_cif.Design.of_ast (Ace_workloads.Chips.single_inverter ()))
  in
  let values, diags = Parasitics.all_nets bare in
  check_int "aligned with nets" (Circuit.net_count bare) (Array.length values);
  check_int "one summary diagnostic" 1 (List.length diags);
  check "diag code" true
    (match diags with
    | [ d ] -> d.Ace_diag.Diag.code = "no-geometry"
    | _ -> false);
  check "zero estimates" true
    (Array.for_all (fun p -> p.Parasitics.cap_ff = 0.0) values);
  (* with geometry the connected nets get real estimates *)
  let geo = inverter () in
  let values, _ = Parasitics.all_nets geo in
  check "some capacitance with geometry" true
    (Array.exists (fun p -> p.Parasitics.cap_ff > 0.0) values)

let () =
  Alcotest.run "analysis"
    [
      ( "static-check",
        [
          Alcotest.test_case "clean inverter" `Quick test_clean_inverter;
          Alcotest.test_case "power short" `Quick test_power_short;
          Alcotest.test_case "bad ratio" `Quick test_bad_ratio;
          Alcotest.test_case "malformed device" `Quick test_malformed_device;
          Alcotest.test_case "undriven gate" `Quick test_undriven_gate;
          Alcotest.test_case "stuck node" `Quick test_stuck_node;
          Alcotest.test_case "missing rails" `Quick test_missing_rails;
        ] );
      ( "sim",
        [
          Alcotest.test_case "inverter" `Quick test_sim_inverter;
          Alcotest.test_case "chains" `Quick test_sim_chain;
          Alcotest.test_case "X propagation" `Quick test_sim_unknown_propagates;
          Alcotest.test_case "nand truth table" `Quick test_sim_nand_truth_table;
          Alcotest.test_case "oscillation" `Quick test_sim_oscillation_detected;
          Alcotest.test_case "charge storage" `Quick test_sim_charge_storage;
          Alcotest.test_case "missing rail diag" `Quick test_sim_missing_rail_diag;
          Alcotest.test_case "case-insensitive rails" `Quick test_sim_case_insensitive_rails;
        ] );
      ( "gates",
        [
          Alcotest.test_case "inverter" `Quick test_recognize_inverter;
          Alcotest.test_case "nand" `Quick test_recognize_nand;
          Alcotest.test_case "nor" `Quick test_recognize_nor;
          Alcotest.test_case "nand3" `Quick test_recognize_nand3;
          Alcotest.test_case "chain" `Quick test_recognize_chain;
          Alcotest.test_case "pass gates unmatched" `Quick test_recognize_leaves_pass_gates;
        ] );
      ( "sta",
        [
          Alcotest.test_case "chain depth" `Quick test_sta_chain_depth;
          Alcotest.test_case "delay monotone" `Quick test_sta_delay_monotone;
          Alcotest.test_case "feedback" `Quick test_sta_feedback_detected;
          Alcotest.test_case "ring feedback" `Quick test_sta_feedback_ring;
          Alcotest.test_case "missing rail diag" `Quick test_sta_missing_rail_diag;
          Alcotest.test_case "no gates" `Quick test_sta_no_gates;
        ] );
      ( "parasitics",
        [
          Alcotest.test_case "basic" `Quick test_parasitics_basic;
          Alcotest.test_case "needs geometry" `Quick test_parasitics_needs_geometry;
          Alcotest.test_case "monotone in length" `Quick test_parasitics_monotone;
          Alcotest.test_case "device values" `Quick test_device_parasitics;
          Alcotest.test_case "rc delay" `Quick test_rc_delay;
          Alcotest.test_case "all_nets total" `Quick test_parasitics_all_nets_total;
        ] );
    ]
