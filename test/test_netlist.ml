open Ace_geom
open Ace_tech
open Ace_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Union-find                                                           *)
(* ------------------------------------------------------------------ *)

let test_uf_basics () =
  let uf = Union_find.create () in
  let a = Union_find.fresh uf and b = Union_find.fresh uf in
  let c = Union_find.fresh uf in
  check "fresh are distinct" false (Union_find.same uf a b);
  check_int "three classes" 3 (Union_find.class_count uf);
  ignore (Union_find.union uf a b);
  check "unioned" true (Union_find.same uf a b);
  check "c apart" false (Union_find.same uf a c);
  check_int "two classes" 2 (Union_find.class_count uf);
  ignore (Union_find.union uf a b);
  check_int "idempotent union" 2 (Union_find.class_count uf)

let test_uf_compress () =
  let uf = Union_find.create () in
  let xs = Array.init 10 (fun _ -> Union_find.fresh uf) in
  ignore (Union_find.union uf xs.(0) xs.(5));
  ignore (Union_find.union uf xs.(5) xs.(9));
  ignore (Union_find.union uf xs.(2) xs.(3));
  let dense = Union_find.compress uf in
  check_int "dense range" (Union_find.class_count uf)
    (1 + Array.fold_left max 0 dense);
  check "same class same id" true (dense.(xs.(0)) = dense.(xs.(9)));
  check "distinct classes distinct ids" true (dense.(xs.(0)) <> dense.(xs.(2)))

let prop_uf_vs_model =
  (* compare against a naive model over a random union script *)
  Tutil.qtest ~count:200 "union-find agrees with a naive partition model"
    QCheck2.Gen.(
      let* n = int_range 1 20 in
      let* ops = list_size (int_range 0 40) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, ops))
    (fun (n, ops) ->
      let uf = Union_find.create () in
      let ids = Array.init n (fun _ -> Union_find.fresh uf) in
      let model = Array.init n (fun i -> i) in
      let model_find i =
        let rec go i = if model.(i) = i then i else go model.(i) in
        go i
      in
      List.iter
        (fun (a, b) ->
          ignore (Union_find.union uf ids.(a) ids.(b));
          let ra = model_find a and rb = model_find b in
          if ra <> rb then model.(ra) <- rb)
        ops;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Union_find.same uf ids.(i) ids.(j) <> (model_find i = model_find j)
          then ok := false
        done
      done;
      !ok && Union_find.count uf = n)

(* The pre-flat-arena union-find, kept verbatim as a reference model: two
   boxed int arrays and *recursive* path compression.  The qcheck suite
   below checks the Bigarray rewrite is observationally identical, and the
   deep-chain test demonstrates the stack hazard the rewrite removes. *)
module Ref_uf = struct
  type t = {
    mutable parent : int array;
    mutable rank : int array;
    mutable size : int;
    mutable classes : int;
  }

  let create () =
    { parent = Array.make 64 0; rank = Array.make 64 0; size = 0; classes = 0 }

  let fresh t =
    if t.size = Array.length t.parent then begin
      let grow a = Array.append a (Array.make (Array.length a) 0) in
      t.parent <- grow t.parent;
      t.rank <- grow t.rank
    end;
    let id = t.size in
    t.parent.(id) <- id;
    t.rank.(id) <- 0;
    t.size <- t.size + 1;
    t.classes <- t.classes + 1;
    id

  let rec find_root t x =
    let p = t.parent.(x) in
    if p = x then x
    else begin
      let root = find_root t p in
      t.parent.(x) <- root;
      root
    end

  let find = find_root
  let same t a b = find t a = find t b

  let union t a b =
    let ra = find_root t a and rb = find_root t b in
    if ra = rb then ra
    else begin
      t.classes <- t.classes - 1;
      if t.rank.(ra) < t.rank.(rb) then begin
        t.parent.(ra) <- rb;
        rb
      end
      else if t.rank.(ra) > t.rank.(rb) then begin
        t.parent.(rb) <- ra;
        ra
      end
      else begin
        t.parent.(rb) <- ra;
        t.rank.(ra) <- t.rank.(ra) + 1;
        ra
      end
    end

  let class_count t = t.classes

  let compress t =
    let mapping = Array.make (max t.size 1) (-1) in
    let next = ref 0 in
    for x = 0 to t.size - 1 do
      let r = find_root t x in
      if mapping.(r) = -1 then begin
        mapping.(r) <- !next;
        incr next
      end;
      if x <> r then mapping.(x) <- mapping.(r)
    done;
    mapping

  let link t a b =
    let ra = find_root t a and rb = find_root t b in
    if ra <> rb then begin
      t.parent.(ra) <- rb;
      t.classes <- t.classes - 1
    end
end

(* Union by rank keeps real forests logarithmic, so a pathological chain
   can only be built through the rank-bypassing test back door.  The new
   iterative find must walk (and compress) a million-link chain with O(1)
   stack; the recursive reference implementation allocates a stack frame
   per link on the same chain and is expected to die with Stack_overflow
   (we tolerate it surviving — stack limits vary by platform — but it must
   not produce a wrong answer). *)
let deep_chain_n = 1_000_000

let test_uf_deep_chain () =
  let uf = Union_find.create ~hint:deep_chain_n () in
  for _ = 1 to deep_chain_n do
    ignore (Union_find.fresh uf)
  done;
  for i = 0 to deep_chain_n - 2 do
    Union_find.For_testing.link uf i (i + 1)
  done;
  check_int "one class" 1 (Union_find.class_count uf);
  let root = Union_find.find uf 0 in
  check_int "root is chain end" (deep_chain_n - 1) root;
  check "compressed: second find is direct" true
    (Union_find.find uf 0 = root && Union_find.same uf 0 (deep_chain_n / 2))

let test_uf_deep_chain_old_overflows () =
  let r = Ref_uf.create () in
  for _ = 1 to deep_chain_n do
    ignore (Ref_uf.fresh r)
  done;
  for i = 0 to deep_chain_n - 2 do
    Ref_uf.link r i (i + 1)
  done;
  match Ref_uf.find r 0 with
  | root -> check_int "survived (deep stack): correct root" (deep_chain_n - 1) root
  | exception Stack_overflow -> check "recursive find overflowed as expected" true true

let test_uf_hint_and_grow () =
  (* a tiny hint must not change behaviour, only the initial capacity *)
  let uf = Union_find.create ~hint:2 () in
  let n = 300 in
  let ids = Array.init n (fun _ -> Union_find.fresh uf) in
  check_int "all singletons after growth" n (Union_find.class_count uf);
  Array.iteri
    (fun i id -> check_int "ids are dense" i id)
    ids;
  for i = 0 to n - 2 do
    if i mod 3 <> 0 then ignore (Union_find.union uf ids.(i) ids.(i + 1))
  done;
  let classes = Union_find.class_count uf in
  let m1 = Union_find.compress uf in
  let m2 = Union_find.compress uf in
  check "compress reuses its buffer" true (m1 == m2);
  check_int "dense ids cover classes" classes
    (1 + Array.fold_left max (-1) (Array.sub m1 0 n));
  (* growing again after compress keeps the accounting consistent *)
  let extra = Union_find.fresh uf in
  check_int "class_count tracks growth" (classes + 1) (Union_find.class_count uf);
  check_int "new element is its own root" extra (Union_find.find uf extra)

(* Random op scripts: interleave fresh / union / find / compress and demand
   the flat Bigarray forest and the boxed recursive reference stay
   observationally identical at every step. *)
let prop_uf_vs_reference =
  Tutil.qtest ~count:300 "flat Bigarray union-find = boxed recursive reference"
    QCheck2.Gen.(
      list_size (int_range 1 120) (triple (int_range 0 3) nat nat))
    (fun script ->
      let uf = Union_find.create ~hint:1 () in
      let r = Ref_uf.create () in
      let ok = ref true in
      let agree () =
        let n = Union_find.count uf in
        if Union_find.class_count uf <> Ref_uf.class_count r then ok := false;
        if n > 0 then begin
          let ma = Union_find.compress uf and mb = Ref_uf.compress r in
          for x = 0 to n - 1 do
            if ma.(x) <> mb.(x) then ok := false
          done
        end
      in
      List.iter
        (fun (tag, a, b) ->
          let n = Union_find.count uf in
          match tag with
          | 0 ->
              let ia = Union_find.fresh uf and ib = Ref_uf.fresh r in
              if ia <> ib then ok := false
          | 1 when n > 0 ->
              (* survivors may differ only if representatives differ — they
                 must not, since both sides run identical rank logic *)
              let sa = Union_find.union uf (a mod n) (b mod n) in
              let sb = Ref_uf.union r (a mod n) (b mod n) in
              if sa <> sb then ok := false
          | 2 when n > 0 ->
              if
                Union_find.find uf (a mod n) <> Ref_uf.find r (a mod n)
                || Union_find.same uf (a mod n) (b mod n)
                   <> Ref_uf.same r (a mod n) (b mod n)
              then ok := false
          | 3 when n > 0 -> agree ()
          | _ -> ())
        script;
      agree ();
      !ok)

(* ------------------------------------------------------------------ *)
(* Circuits                                                             *)
(* ------------------------------------------------------------------ *)

let inverter_circuit () =
  let net names =
    { Circuit.names; location = Point.origin; geometry = [] }
  in
  let dev dtype gate source drain length width =
    {
      Circuit.dtype;
      gate;
      source;
      drain;
      length;
      width;
      location = Point.origin;
      geometry = [];
    }
  in
  {
    Circuit.name = "inv";
    nets = [| net [ "VDD" ]; net [ "OUT" ]; net [ "IN" ]; net [ "GND" ] |];
    devices =
      [|
        dev Nmos.Depletion 1 0 1 8 2 (* pull-up, gate tied to out *);
        dev Nmos.Enhancement 2 1 3 2 2 (* pull-down *);
      |];
  }

let test_circuit_queries () =
  let c = inverter_circuit () in
  check_int "find VDD" 0 (Circuit.find_net c "VDD");
  check "missing raises" true
    (match Circuit.find_net c "nope" with
    | exception Not_found -> true
    | _ -> false);
  check_int "connected nets" 4 (List.length (Circuit.connected_net_indices c));
  check "valid" true (Circuit.validate c = []);
  let e, d = Circuit.device_type_counts c in
  check_int "enh" 1 e;
  check_int "dep" 1 d

let test_circuit_validate_catches () =
  let c = inverter_circuit () in
  let bad =
    {
      c with
      Circuit.devices =
        Array.append c.Circuit.devices
          [|
            {
              Circuit.dtype = Nmos.Enhancement;
              gate = 99;
              source = 0;
              drain = 1;
              length = 0;
              width = 2;
              location = Point.origin;
              geometry = [];
            };
          |];
    }
  in
  check_int "two problems" 2 (List.length (Circuit.validate bad))

(* ------------------------------------------------------------------ *)
(* Wirelist round-trip                                                  *)
(* ------------------------------------------------------------------ *)

let test_wirelist_roundtrip () =
  let c = inverter_circuit () in
  let text = Wirelist.to_string c in
  let c' = Wirelist.of_string text in
  check_int "devices" 2 (Circuit.device_count c');
  check_int "nets" 4 (Circuit.net_count c');
  check "names survive" true (Circuit.find_net c' "OUT" >= 0);
  check "equivalent" true (Tutil.circuit_equal ~with_sizes:true c c')

let test_wirelist_geometry_roundtrip () =
  let c = inverter_circuit () in
  let with_geom =
    {
      c with
      Circuit.nets =
        Array.map
          (fun n ->
            {
              n with
              Circuit.geometry =
                [ (Layer.Metal, Box.make ~l:0 ~b:0 ~r:4 ~t:2) ];
            })
          c.Circuit.nets;
    }
  in
  let text = Wirelist.to_string ~emit_geometry:true with_geom in
  let c' = Wirelist.of_string text in
  check "geometry parsed back" true
    (Array.for_all (fun (n : Circuit.net) -> n.geometry <> []) c'.Circuit.nets)

let test_wirelist_matches_paper_shape () =
  let c = inverter_circuit () in
  let text = Wirelist.to_string c in
  List.iter
    (fun needle ->
      check (Printf.sprintf "contains %s" needle) true
        (let nh = String.length text and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
         go 0))
    [ "(DefPart"; "(Part nDep"; "(Part nEnh"; "(T Gate"; "(Channel (Length"; "(Local" ]

let test_geometry_text () =
  let boxes =
    [ (Some Layer.Metal, Box.make ~l:0 ~b:0 ~r:4 ~t:2);
      (None, Box.make ~l:(-2) ~b:(-2) ~r:0 ~t:0) ]
  in
  let text = Wirelist.Geometry_text.to_string boxes in
  let boxes' = Wirelist.Geometry_text.of_string text in
  check "round-trip" true (boxes = boxes')

let test_wirelist_rejects_garbage () =
  check "not sexp" true
    (match Wirelist.of_string "hello world" with
    | exception Wirelist.Error _ -> true
    | _ -> false);
  check "wrong toplevel" true
    (match Wirelist.of_string "(Foo)" with
    | exception Wirelist.Error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* SPICE                                                                *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_spice_deck () =
  let c = inverter_circuit () in
  let deck = Spice.to_string c in
  check "model cards" true
    (contains deck ".MODEL ENH NMOS" && contains deck ".MODEL DEP NMOS");
  (* M<i> drain gate source bulk MODEL *)
  check "depletion card" true (contains deck "M0 OUT OUT VDD 0 DEP");
  check "enhancement card with gnd as node 0" true
    (contains deck "M1 0 IN OUT 0 ENH");
  check "micron sizes" true (contains deck "L=0.08U W=0.02U");
  check "terminated" true (contains deck ".END")

let test_spice_sanitizes () =
  let c = inverter_circuit () in
  let odd =
    {
      c with
      Circuit.nets =
        Array.map
          (fun (n : Circuit.net) ->
            if n.names = [ "IN" ] then { n with names = [ "a b/c" ] } else n)
          c.Circuit.nets;
    }
  in
  check "no raw separators" true (contains (Spice.to_string odd) "a_b_c")

(* ------------------------------------------------------------------ *)
(* Hierarchical wirelists                                               *)
(* ------------------------------------------------------------------ *)

let two_inverter_hier () =
  let inv =
    {
      Hier.part_name = "Inv";
      net_count = 4 (* 0 vdd, 1 out, 2 in, 3 gnd *);
      exports = [ 0; 1; 2; 3 ];
      net_names = [];
      devices =
        [
          {
            Hier.dtype = Nmos.Depletion;
            gate = 1;
            source = 0;
            drain = 1;
            length = 8;
            width = 2;
            location = Point.origin;
          };
          {
            Hier.dtype = Nmos.Enhancement;
            gate = 2;
            source = 1;
            drain = 3;
            length = 2;
            width = 2;
            location = Point.origin;
          };
        ];
      instances = [];
    }
  in
  let pair =
    {
      Hier.part_name = "Pair";
      net_count = 5 (* 0 vdd, 1 mid, 2 in, 3 gnd, 4 out *);
      exports = [ 0; 2; 3; 4 ];
      net_names = [ (0, "VDD"); (3, "GND"); (2, "IN"); (4, "OUT") ];
      devices = [];
      instances =
        [
          {
            Hier.part_name = "Inv";
            inst_name = "P1";
            offset = Point.origin;
            net_map = [ (0, 0); (1, 1); (2, 2); (3, 3) ];
          };
          {
            Hier.part_name = "Inv";
            inst_name = "P2";
            offset = Point.make 100 0;
            net_map = [ (0, 0); (1, 4); (2, 1); (3, 3) ];
          };
        ];
    }
  in
  { Hier.parts = [ inv; pair ]; top = "Pair" }

let test_hier_validate () =
  let h = two_inverter_hier () in
  check "valid" true (Hier.validate h = []);
  check_int "flat device count" 4 (Hier.flat_device_count h)

let test_hier_validate_catches () =
  let h = two_inverter_hier () in
  let bad = { h with Hier.top = "Missing" } in
  check "missing top" true (Hier.validate bad <> []);
  let bad2 =
    {
      h with
      Hier.parts =
        List.map
          (fun p ->
            if p.Hier.part_name = "Pair" then
              { p with Hier.net_count = 2 } (* bindings out of range *)
            else p)
          h.Hier.parts;
    }
  in
  check "range errors" true (Hier.validate bad2 <> [])

let test_hier_flatten () =
  let h = two_inverter_hier () in
  let c = Hier.flatten h in
  check_int "devices" 4 (Circuit.device_count c);
  (* nets: vdd, gnd, in, mid, out = 5 *)
  check_int "nets" 5 (Circuit.net_count c);
  check "names propagate" true (Circuit.find_net c "OUT" >= 0);
  (* the chain property: OUT is driven by a device whose gate is the
     middle net, which is driven by a device gated by IN *)
  let out = Circuit.find_net c "OUT" and inn = Circuit.find_net c "IN" in
  let gated_by g =
    Array.exists
      (fun (d : Circuit.device) -> d.gate = g && d.dtype = Nmos.Enhancement)
      c.Circuit.devices
  in
  check "IN gates something" true (gated_by inn);
  check "OUT gates nothing" false (gated_by out)

let test_hier_roundtrip () =
  let h = two_inverter_hier () in
  let text = Hier.to_string h in
  let h' = Hier.of_string text in
  check "valid after parse" true (Hier.validate h' = []);
  let c = Hier.flatten h and c' = Hier.flatten h' in
  check "flattens equivalently" true (Tutil.circuit_equal ~with_sizes:true c c')

let test_spice_hier () =
  let h = two_inverter_hier () in
  let deck = Spice.of_hier h in
  check "subckt for the inverter" true (contains deck ".SUBCKT Inv");
  check "ends" true (contains deck ".ENDS Inv");
  check "two instance cards" true
    (contains deck "X0_P1" && contains deck "X1_P2");
  check "top-level has no subckt for Pair" false (contains deck ".SUBCKT Pair");
  check "terminated" true (contains deck ".END\n")

(* ------------------------------------------------------------------ *)
(* Comparator                                                           *)
(* ------------------------------------------------------------------ *)

let test_compare_reflexive () =
  let c = inverter_circuit () in
  check "equivalent to itself" true (Tutil.circuit_equal ~with_sizes:true c c)

let test_compare_renumbered () =
  let c = inverter_circuit () in
  (* permute net numbering: swap 0 and 3 *)
  let perm = [| 3; 1; 2; 0 |] in
  let c' =
    {
      c with
      Circuit.nets =
        Array.init 4 (fun i ->
            c.Circuit.nets.(match i with 0 -> 3 | 3 -> 0 | i -> i));
      devices =
        Array.map
          (fun (d : Circuit.device) ->
            { d with gate = perm.(d.gate); source = perm.(d.source); drain = perm.(d.drain) })
          c.Circuit.devices;
    }
  in
  check "renumbering is invisible" true (Tutil.circuit_equal ~with_sizes:true c c')

let test_compare_swapped_sd () =
  let c = inverter_circuit () in
  let c' =
    {
      c with
      Circuit.devices =
        Array.map
          (fun (d : Circuit.device) -> { d with source = d.drain; drain = d.source })
          c.Circuit.devices;
    }
  in
  check "source/drain order is invisible" true (Tutil.circuit_equal c c')

let test_compare_detects_changes () =
  let c = inverter_circuit () in
  let retyped =
    {
      c with
      Circuit.devices =
        Array.map
          (fun (d : Circuit.device) -> { d with Circuit.dtype = Nmos.Enhancement })
          c.Circuit.devices;
    }
  in
  check "type change detected" false (Tutil.circuit_equal c retyped);
  let rewired =
    {
      c with
      Circuit.devices =
        Array.map
          (fun (d : Circuit.device) ->
            if d.Circuit.dtype = Nmos.Enhancement then { d with gate = 0 } else d)
          c.Circuit.devices;
    }
  in
  check "rewiring detected" false (Tutil.circuit_equal c rewired);
  let resized =
    {
      c with
      Circuit.devices =
        Array.map (fun (d : Circuit.device) -> { d with length = d.length + 2 })
          c.Circuit.devices;
    }
  in
  check "size change detected with sizes" false
    (Tutil.circuit_equal ~with_sizes:true c resized);
  check "size change invisible without sizes" true (Tutil.circuit_equal c resized)

(* ------------------------------------------------------------------ *)
(* Properties over random circuits                                      *)
(* ------------------------------------------------------------------ *)

let prop_wirelist_roundtrip =
  Tutil.qtest ~count:200 "wirelist round-trips any circuit" Tutil.gen_circuit
    (fun c ->
      let c' = Wirelist.of_string (Wirelist.to_string c) in
      Circuit.device_count c = Circuit.device_count c'
      && Tutil.circuit_equal ~with_sizes:true c c')

let prop_compare_reflexive =
  Tutil.qtest ~count:200 "compare is reflexive" Tutil.gen_circuit (fun c ->
      Tutil.circuit_equal ~with_sizes:true c c)

let prop_compare_permutation =
  Tutil.qtest ~count:200 "compare is blind to device order" Tutil.gen_circuit
    (fun c ->
      let reversed =
        {
          c with
          Circuit.devices =
            (let a = Array.copy c.Circuit.devices in
             let n = Array.length a in
             Array.init n (fun i -> a.(n - 1 - i)));
        }
      in
      Tutil.circuit_equal ~with_sizes:true c reversed)

let prop_spice_cards =
  Tutil.qtest ~count:100 "SPICE deck has one M card per device"
    Tutil.gen_circuit
    (fun c ->
      let deck = Spice.to_string c in
      let cards =
        List.filter
          (fun line -> String.length line > 0 && line.[0] = 'M')
          (String.split_on_char '\n' deck)
      in
      List.length cards = Circuit.device_count c)

let gen_sexp =
  let open QCheck2.Gen in
  sized (fun size ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Sexp.Atom (Printf.sprintf "a%d" i)) (int_range 0 99);
                map (fun i -> Sexp.Str (Printf.sprintf "s %d \" q" i)) (int_range 0 99);
              ]
          else
            oneof
              [
                map (fun i -> Sexp.Atom (Printf.sprintf "a%d" i)) (int_range 0 99);
                map
                  (fun items -> Sexp.List items)
                  (list_size (int_range 0 4) (self (n / 2)));
              ])
        (min size 6))

let prop_sexp_roundtrip =
  Tutil.qtest ~count:200 "s-expressions round-trip" gen_sexp (fun s ->
      Sexp.parse_string (Sexp.to_string s) = [ s ])

let test_compare_counts () =
  let c = inverter_circuit () in
  let fewer = { c with Circuit.devices = [| c.Circuit.devices.(0) |] } in
  match Compare.compare c fewer with
  | Compare.Distinct _ -> ()
  | _ -> Alcotest.fail "device count mismatch not reported"

let () =
  Alcotest.run "netlist"
    [
      ( "union-find",
        [
          Alcotest.test_case "basics" `Quick test_uf_basics;
          Alcotest.test_case "compress" `Quick test_uf_compress;
          Alcotest.test_case "deep chain (iterative find)" `Quick
            test_uf_deep_chain;
          Alcotest.test_case "deep chain overflows old recursive find" `Quick
            test_uf_deep_chain_old_overflows;
          Alcotest.test_case "hint + grow + buffer reuse" `Quick
            test_uf_hint_and_grow;
          prop_uf_vs_model;
          prop_uf_vs_reference;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "queries" `Quick test_circuit_queries;
          Alcotest.test_case "validate catches" `Quick test_circuit_validate_catches;
        ] );
      ( "wirelist",
        [
          Alcotest.test_case "round-trip" `Quick test_wirelist_roundtrip;
          Alcotest.test_case "geometry round-trip" `Quick test_wirelist_geometry_roundtrip;
          Alcotest.test_case "paper shape" `Quick test_wirelist_matches_paper_shape;
          Alcotest.test_case "geometry text" `Quick test_geometry_text;
          Alcotest.test_case "rejects garbage" `Quick test_wirelist_rejects_garbage;
        ] );
      ( "spice",
        [
          Alcotest.test_case "deck" `Quick test_spice_deck;
          Alcotest.test_case "sanitizes names" `Quick test_spice_sanitizes;
        ] );
      ( "hier",
        [
          Alcotest.test_case "validate" `Quick test_hier_validate;
          Alcotest.test_case "validate catches" `Quick test_hier_validate_catches;
          Alcotest.test_case "flatten" `Quick test_hier_flatten;
          Alcotest.test_case "round-trip" `Quick test_hier_roundtrip;
          Alcotest.test_case "hierarchical SPICE" `Quick test_spice_hier;
        ] );
      ( "compare",
        [
          Alcotest.test_case "reflexive" `Quick test_compare_reflexive;
          Alcotest.test_case "renumbered" `Quick test_compare_renumbered;
          Alcotest.test_case "swapped source/drain" `Quick test_compare_swapped_sd;
          Alcotest.test_case "detects changes" `Quick test_compare_detects_changes;
          Alcotest.test_case "count mismatch" `Quick test_compare_counts;
        ] );
      ( "properties",
        [
          prop_wirelist_roundtrip;
          prop_compare_reflexive;
          prop_compare_permutation;
          prop_spice_cards;
          prop_sexp_roundtrip;
        ] );
    ]
