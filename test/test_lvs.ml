(* test_lvs — the LVS engine: lenient reference parsing, series/parallel
   reduction, the seeded-refinement comparator, and waiver plumbing.

   The reduction property checks conduction equivalence against brute
   force: for every assignment of the (few) gate nets, the reduced
   circuit must connect exactly the same named nets as the original.
   The comparator properties check reflexivity (every circuit matches
   itself) and symmetry (swapping the sides flips finding polarity but
   nothing else). *)

open Ace_netlist
module Point = Ace_geom.Point
module Nmos = Ace_tech.Nmos
module Reference = Ace_lvs.Reference
module Reduce = Ace_lvs.Reduce
module Match = Ace_lvs.Match
module Report = Ace_lvs.Report
module Verilog = Ace_lvs.Verilog
module HierLvs = Ace_lvs.Hier
module Diag = Ace_diag.Diag

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Builders                                                           *)

let net ?(names = []) i =
  { Circuit.names; location = Point.make i 0; geometry = [] }

let dev ?(dtype = Nmos.Enhancement) ?(l = 500) ?(w = 500) ~g ~s ~d i =
  {
    Circuit.dtype;
    gate = g;
    source = s;
    drain = d;
    length = l;
    width = w;
    location = Point.make i 0;
    geometry = [];
  }

let circuit ?(name = "test") devices nets =
  {
    Circuit.name;
    devices = Array.of_list devices;
    nets = Array.of_list nets;
  }

let parse_ok text =
  let c, diags = Reference.parse text in
  check "parse emits no errors" true (not (List.exists Diag.is_error diags));
  c

let data_file file =
  let dir =
    List.find Sys.file_exists [ "../data"; "data"; "_build/default/data" ]
  in
  let ic = open_in_bin (Filename.concat dir file) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let extract_cif file =
  let ast, _ = Ace_cif.Parser.parse_string_lenient (data_file file) in
  let design, _ = Ace_cif.Design.of_ast_lenient ast in
  Ace_core.Parallel.extract ~jobs:1 ~name:(Filename.chop_extension file)
    design

let extract_hier file =
  let ast, _ = Ace_cif.Parser.parse_string_lenient (data_file file) in
  let design, _ = Ace_cif.Design.of_ast_lenient ast in
  fst (Ace_hext.Hext.extract design)

let codes_of (r : Match.result) =
  List.sort_uniq String.compare
    (List.map (fun (f : Match.finding) -> f.Match.code) r.Match.findings)

(* ------------------------------------------------------------------ *)
(* Reference parser                                                   *)

let test_parse_basics () =
  let c =
    parse_ok
      "* an inverter\n\
       .MODEL ENH NMOS (LEVEL=1 VTO=1.0)\n\
       .MODEL DEP NMOS (LEVEL=1 VTO=-3.0)\n\
       M1 OUT INP 0 0 ENH L=5U W=5U\n\
       M2 VDD OUT OUT 0 DEP L=20U W=5U\n\
       .END\n"
  in
  check_int "two devices" 2 (Circuit.device_count c);
  let enh, depl = Circuit.device_type_counts c in
  check_int "one enhancement" 1 enh;
  check_int "one depletion" 1 depl;
  check "node 0 aliases GND" true (Circuit.find_net_opt c "GND" <> None);
  let d1 = c.Circuit.devices.(0) in
  check_int "L=5U is 500 centimicrons" 500 d1.Circuit.length;
  check_int "W=5U is 500 centimicrons" 500 d1.Circuit.width;
  check_int "L=20U is 2000 centimicrons" 2000
    c.Circuit.devices.(1).Circuit.length

let test_parse_lexing () =
  (* continuations, inline comments, parens/commas as whitespace,
     case-insensitive net identity *)
  let c =
    parse_ok
      "M1 OUT INP 0 0 ENH $ pull-down\n\
       + L=5U\n\
       + W=5U\n\
       M2 (VDD, out, OUT) 0 DEP L=20U W=5U\n"
  in
  check_int "continuation joins one card per device" 2
    (Circuit.device_count c);
  check "out and OUT are one net" true
    (Circuit.find_net_opt c "OUT" <> None
    && c.Circuit.devices.(1).Circuit.gate
       = c.Circuit.devices.(0).Circuit.drain
       || c.Circuit.devices.(1).Circuit.gate
          = c.Circuit.devices.(0).Circuit.source
       || c.Circuit.devices.(1).Circuit.source
          = c.Circuit.devices.(0).Circuit.drain)

let test_parse_dims () =
  let c = parse_ok "M1 A B C 0 ENH L=500N W=500\nM2 A B C 0 ENH\n" in
  check_int "500N is 50 centimicrons" 50 c.Circuit.devices.(0).Circuit.length;
  check_int "bare numbers are centimicrons" 500
    c.Circuit.devices.(0).Circuit.width;
  check_int "missing L means unknown (0)" 0
    c.Circuit.devices.(1).Circuit.length;
  let _, diags = Reference.parse "M1 A B C 0 ENH L=bogus W=5U\n" in
  check "malformed dimension is diagnosed" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-bad-number") diags)

let test_parse_hierarchy () =
  let c =
    parse_ok
      ".GLOBAL VDD\n\
       .SUBCKT INV IN OUT\n\
       M1 OUT IN 0 0 ENH L=5U W=5U\n\
       M2 VDD OUT OUT 0 DEP L=20U W=5U\n\
       .ENDS\n\
       X1 A B INV\n\
       X2 B C INV\n\
       .END\n"
  in
  check_int "two instances flatten to four devices" 4
    (Circuit.device_count c);
  check "pins bind across instances" true
    (Circuit.find_net_opt c "B" <> None);
  (* VDD is global: both instances share one net *)
  check "global VDD is shared" true (Circuit.find_net_opt c "VDD" <> None);
  (* connected: gnd, VDD, A, B, C = 5 *)
  check_int "five connected nets" 5
    (List.length (Circuit.connected_net_indices c))

let test_parse_hierarchy_errors () =
  let _, d1 = Reference.parse "X1 A B NOSUCH\n" in
  check "undefined subckt diagnosed" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-undefined-subckt") d1);
  let _, d2 =
    Reference.parse ".SUBCKT A P\nX1 P A\n.ENDS\nX2 Q A\n.END\n"
  in
  check "recursion diagnosed" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-recursive") d2);
  let _, d3 = Reference.parse ".SUBCKT INV IN OUT\nM1 OUT IN 0 0 ENH\n" in
  check "unterminated subckt diagnosed" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-unterminated-subckt")
       d3)

let test_parse_lenient () =
  (* garbage lines become diagnostics; the good cards still parse *)
  let c, diags =
    Reference.parse
      "M1 OUT INP 0 0 ENH L=5U W=5U\n\
       this is not spice at all\n\
       M\n\
       M2 VDD OUT OUT 0 DEP L=20U W=5U\n"
  in
  check_int "good cards survive garbage" 2 (Circuit.device_count c);
  check "garbage is diagnosed" true (diags <> [])

let test_load_sniffs_wirelist () =
  let c = parse_ok "M1 OUT INP 0 0 ENH L=5U W=5U\n" in
  let wl = Wirelist.to_string c in
  (match Reference.load wl with
  | Ok (c', _) ->
      check_int "wirelist round-trips through load" (Circuit.device_count c)
        (Circuit.device_count c')
  | Error _ -> check "wirelist load" true false);
  match Reference.load "(DefPart garbage" with
  | Error d -> check_string "wirelist error code" "wirelist-error" d.Diag.code
  | Ok _ -> check "broken wirelist rejected" true false

(* ------------------------------------------------------------------ *)
(* Reduction                                                          *)

let test_reduce_parallel () =
  (* two identical fingers in parallel: widths and multiplicities add *)
  let nets = [ net ~names:[ "A" ] 0; net ~names:[ "B" ] 1; net ~names:[ "G" ] 2 ] in
  let c =
    circuit [ dev ~g:2 ~s:0 ~d:1 ~w:500 0; dev ~g:2 ~s:1 ~d:0 ~w:700 1 ] nets
  in
  let r = Reduce.reduce c in
  check_int "one device remains" 1
    (Circuit.device_count r.Reduce.circuit);
  check_int "widths add" 1200 r.Reduce.circuit.Circuit.devices.(0).Circuit.width;
  check_int "multiplicity 2" 2 r.Reduce.mult.(0);
  check_int "one merge" 1 r.Reduce.merged

let test_reduce_series () =
  (* chain A -mid- B through an anonymous net: lengths add *)
  let nets = [ net ~names:[ "A" ] 0; net 1; net ~names:[ "B" ] 2; net ~names:[ "G" ] 3 ] in
  let c =
    circuit [ dev ~g:3 ~s:0 ~d:1 ~l:500 0; dev ~g:3 ~s:1 ~d:2 ~l:700 1 ] nets
  in
  let r = Reduce.reduce c in
  check_int "series chain collapses" 1 (Circuit.device_count r.Reduce.circuit);
  check_int "lengths add" 1200
    r.Reduce.circuit.Circuit.devices.(0).Circuit.length;
  (* the surviving device spans A..B *)
  let d = r.Reduce.circuit.Circuit.devices.(0) in
  check "terminals span the chain" true
    (List.sort Int.compare [ d.Circuit.source; d.Circuit.drain ] = [ 0; 2 ])

let test_reduce_respects_names_and_gates () =
  (* a named internal net, or one carrying a gate terminal, never merges *)
  let named =
    circuit
      [ dev ~g:3 ~s:0 ~d:1 0; dev ~g:3 ~s:1 ~d:2 1 ]
      [ net ~names:[ "A" ] 0; net ~names:[ "MID" ] 1; net ~names:[ "B" ] 2;
        net ~names:[ "G" ] 3 ]
  in
  check_int "named internal net survives" 2
    (Circuit.device_count (Reduce.reduce named).Reduce.circuit);
  let gated =
    circuit
      [ dev ~g:3 ~s:0 ~d:1 0; dev ~g:3 ~s:1 ~d:2 1; dev ~g:1 ~s:3 ~d:3 2 ]
      [ net ~names:[ "A" ] 0; net 1; net ~names:[ "B" ] 2; net ~names:[ "G" ] 3 ]
  in
  check_int "gate-carrying internal net survives" 3
    (Circuit.device_count (Reduce.reduce gated).Reduce.circuit);
  (* but an unshared name stops blocking under a custom predicate *)
  let r = Reduce.reduce ~anonymous:(fun _ -> true) named in
  check_int "custom anonymity predicate unlocks the merge" 1
    (Circuit.device_count r.Reduce.circuit)

(* ------------------------------------------------------------------ *)
(* Comparator: golden corpus                                          *)

let clean_pairs =
  [
    ("inverter.cif", "inverter.sp");
    ("chain4.cif", "chain4.sp");
    ("nand2.cif", "nand2.sp");
    ("nor2.cif", "nor2.sp");
    ("mux2.cif", "mux2.sp");
    ("latch.cif", "latch.sp");
    ("mesh4x4.cif", "mesh4x4.sp");
  ]

let test_corpus_clean () =
  List.iter
    (fun (cif, sp) ->
      let layout = extract_cif cif in
      let reference, diags = Reference.parse (data_file sp) in
      check (sp ^ " parses cleanly") true
        (not (List.exists Diag.is_error diags));
      let r = Match.run ~layout ~reference () in
      check (cif ^ " vs " ^ sp ^ " is clean") true
        (r.Match.outcome = Match.Clean);
      check (cif ^ " matched every device") true
        (r.Match.stats.Match.matched > 0
        && r.Match.stats.Match.matched = r.Match.stats.Match.layout_devices))
    clean_pairs

let seeded_fixtures =
  [
    ("nand2.cif", "nand2.extra.sp", "lvs-extra-device");
    ("inverter.cif", "inverter.missing.sp", "lvs-missing-device");
    ("chain4.cif", "chain4.split.sp", "lvs-net-split");
    ("inverter.cif", "inverter.swapped.sp", "lvs-size-mismatch");
    ("inverter.cif", "inverter.merge.sp", "lvs-net-merge");
  ]

let test_seeded_mismatches () =
  List.iter
    (fun (cif, sp, code) ->
      let layout = extract_cif cif in
      let reference, _ = Reference.parse (data_file sp) in
      let r = Match.run ~layout ~reference () in
      check (sp ^ " mismatches") true (r.Match.outcome = Match.Mismatch);
      check
        (Printf.sprintf "%s produces %s (got: %s)" sp code
           (String.concat " " (codes_of r)))
        true
        (List.mem code (codes_of r)))
    seeded_fixtures

let test_size_knobs () =
  let layout = extract_cif "inverter.cif" in
  let reference, _ = Reference.parse (data_file "inverter.swapped.sp") in
  let strict = Match.run ~layout ~reference () in
  check "swapped W/L is a mismatch" true
    (strict.Match.outcome = Match.Mismatch);
  let tolerant = Match.run ~tolerance:0.8 ~layout ~reference () in
  check "an 80% tolerance forgives the swap" true
    (tolerant.Match.outcome = Match.Clean);
  let unsized = Match.run ~with_sizes:false ~layout ~reference () in
  check "--no-sizes forgives the swap" true
    (unsized.Match.outcome = Match.Clean)

let test_one_sided_names_harmless () =
  (* isomorphic circuits with entirely disjoint net names must compare
     clean: a name the other side does not know is not evidence *)
  let a = parse_ok "M1 X Y Z 0 ENH L=5U W=5U\nM2 P X Q 0 DEP L=5U W=5U\n" in
  let b =
    parse_ok "M1 EQ EH EZ 0 ENH L=5U W=5U\nM2 EP EQ ER 0 DEP L=5U W=5U\n"
  in
  let r = Match.run ~layout:a ~reference:b () in
  check "disjoint names still match" true (r.Match.outcome = Match.Clean)

let test_shared_names_pin () =
  (* same topology, but a shared unique name attached to structurally
     different nets must be reported *)
  let a = parse_ok "M1 OUT A GND 0 ENH L=5U W=5U\n" in
  let b = parse_ok "M1 A OUT GND 0 ENH L=5U W=5U\n" in
  let r = Match.run ~layout:a ~reference:b () in
  check "conflicting name hints surface" true
    (r.Match.outcome <> Match.Clean)

(* ------------------------------------------------------------------ *)
(* Report / waiver plumbing                                           *)

let test_report_baseline () =
  let layout = extract_cif "nand2.cif" in
  let reference, _ = Reference.parse (data_file "nand2.extra.sp") in
  let r = Match.run ~layout ~reference () in
  check "fixture yields findings" true (r.Match.findings <> []);
  let fps = List.map Report.fingerprint r.Match.findings in
  List.iter
    (fun fp -> check_int "fingerprint is 16 hex chars" 16 (String.length fp))
    fps;
  let path = Filename.temp_file "lvs" ".baseline" in
  Ace_lint.Baseline.save path (Ace_lint.Baseline.of_fingerprints fps);
  (match Ace_lint.Baseline.load path with
  | Ok b ->
      check "every finding is waived by its own baseline" true
        (List.for_all (fun fp -> Ace_lint.Baseline.mem b fp) fps);
      check "unknown fingerprints are not waived" false
        (Ace_lint.Baseline.mem b "0000000000000000")
  | Error m -> check ("baseline load: " ^ m) true false);
  Sys.remove path;
  (* fingerprints are stable across re-runs *)
  let r2 = Match.run ~layout ~reference () in
  check "fingerprints are deterministic" true
    (List.map Report.fingerprint r2.Match.findings = fps)

let test_report_rules_cover_codes () =
  let rules =
    List.map (fun r -> r.Ace_diag.Sarif.id) (Report.sarif_rules ())
  in
  let emitted = ref [] in
  List.iter
    (fun (cif, sp, _) ->
      let layout = extract_cif cif in
      let reference, _ = Reference.parse (data_file sp) in
      let r = Match.run ~layout ~reference () in
      emitted := codes_of r @ !emitted)
    seeded_fixtures;
  List.iter
    (fun code ->
      check (code ^ " is a registered SARIF rule") true
        (List.mem code rules))
    (List.sort_uniq String.compare !emitted);
  (* parser codes are registered too *)
  List.iter
    (fun code -> check (code ^ " registered") true (List.mem code rules))
    [ "lvs-ref-bad-card"; "lvs-ref-bad-number"; "lvs-ref-undefined-subckt" ];
  let d =
    Report.to_diag
      {
        Match.code = "lvs-extra-device";
        severity = Diag.Error;
        message = "m";
        anchor = "a";
        layout_net = None;
      }
  in
  check "to_diag keeps the code" true (d.Diag.code = "lvs-extra-device")

(* ------------------------------------------------------------------ *)
(* Pin-permutation canonicalization                                   *)

let test_canonicalize_swapped_nand () =
  let layout = extract_cif "nand2.cif" in
  let swapped, diags = Reference.parse (data_file "nand2.swapped.sp") in
  check "nand2.swapped.sp parses cleanly" true
    (not (List.exists Diag.is_error diags));
  let r = Match.run ~layout ~reference:swapped () in
  check "swapped NAND inputs compare clean" true
    (r.Match.outcome = Match.Clean);
  (* the original, unswapped reference still matches too *)
  let straight, _ = Reference.parse (data_file "nand2.sp") in
  check "unswapped NAND still clean" true
    ((Match.run ~layout ~reference:straight ()).Match.outcome = Match.Clean)

(* ------------------------------------------------------------------ *)
(* --max-findings                                                     *)

let test_max_findings () =
  (* a 30-vs-1 device flood: extras overflow the default per-code cap *)
  let buf = Buffer.create 256 in
  for i = 1 to 30 do
    Buffer.add_string buf
      (Printf.sprintf "M%d O%d I%d 0 0 ENH L=5U W=5U\n" i i i)
  done;
  let layout = parse_ok (Buffer.contents buf) in
  let reference = parse_ok "M1 O1 I1 0 0 ENH L=5U W=5U\n" in
  let count code r =
    List.length
      (List.filter (fun (f : Match.finding) -> f.Match.code = code)
         r.Match.findings)
  in
  let unlimited = Match.run ~max_findings:0 ~layout ~reference () in
  check "flood yields a mismatch" true
    (unlimited.Match.outcome = Match.Mismatch);
  let extras = count "lvs-extra-device" unlimited in
  check "unlimited reports every extra device" true (extras > 20);
  let dflt = Match.run ~layout ~reference () in
  check_int "default cap is 20 plus the overflow note" 21
    (count "lvs-extra-device" dflt);
  let capped = Match.run ~max_findings:3 ~layout ~reference () in
  check_int "cap 3 keeps 3 plus the overflow note" 4
    (count "lvs-extra-device" capped);
  check "the cap never changes the verdict" true
    (unlimited.Match.outcome = dflt.Match.outcome
    && dflt.Match.outcome = capped.Match.outcome)

(* ------------------------------------------------------------------ *)
(* Structural-Verilog references                                      *)

let test_verilog_basics () =
  let c, diags =
    Verilog.parse
      "// an inverter\n\
       module inv (y, a);\n\
      \  output y;\n\
      \  input a;\n\
      \  not u1 (y, a);\n\
       endmodule\n"
  in
  check "inverter parses without errors" true
    (not (List.exists Diag.is_error diags));
  check_int "not lowers to pull-down + load" 2 (Circuit.device_count c);
  let enh, depl = Circuit.device_type_counts c in
  check_int "one enhancement" 1 enh;
  check_int "one depletion" 1 depl;
  check "output net named" true (Circuit.find_net_opt c "y" <> None);
  let c3, _ =
    Verilog.parse "module m (y, a, b, c);\n  nand u1 (y, a, b, c);\nendmodule\n"
  in
  check_int "3-input nand is a series chain plus load" 4
    (Circuit.device_count c3)

let test_verilog_total () =
  (* the parser never raises and never loses good statements to bad ones *)
  let c, diags =
    Verilog.parse
      "module ok (y, a);\n\
      \  not u1 (y, a);\n\
      \  this is ; not verilog (;\n\
      \  nand u2 (y, a, a);\n\
       endmodule\n\
       stray tokens outside any module\n"
  in
  check "good instances survive garbage" true (Circuit.device_count c >= 2);
  check "garbage is diagnosed" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-verilog-syntax")
       diags);
  let _, d2 = Verilog.parse "module m (y); xor u1 (y, y); endmodule\n" in
  check "unknown primitive diagnosed" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-unknown-primitive")
       d2);
  let _, d3 =
    Verilog.parse
      "module c (y, a); not u1 (y, a); endmodule\n\
       module m (y, a); c u1 (.y(y), a); endmodule\n"
  in
  check "mixed named/positional port map diagnosed" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-bad-portmap") d3)

let verilog_clean_pairs =
  [
    ("inverter.cif", "inverter.v");
    ("nand2.cif", "nand2.v");
    ("nor2.cif", "nor2.v");
    ("mux2.cif", "mux2.v");
    ("latch.cif", "latch.v");
  ]

let verilog_seeded =
  [
    ("mux2.cif", "mux2.swapped.v");
    ("latch.cif", "latch.missing.v");
    ("nor2.cif", "nor2.wrongprim.v");
  ]

let test_verilog_corpus () =
  List.iter
    (fun (cif, v) ->
      let layout = extract_cif cif in
      let reference, diags = Verilog.parse ~name:v (data_file v) in
      check (v ^ " parses cleanly") true
        (not (List.exists Diag.is_error diags));
      let r = Match.run ~layout ~reference () in
      check (cif ^ " vs " ^ v ^ " is clean") true
        (r.Match.outcome = Match.Clean))
    verilog_clean_pairs;
  List.iter
    (fun (cif, v) ->
      let layout = extract_cif cif in
      let reference, _ = Verilog.parse ~name:v (data_file v) in
      let r = Match.run ~layout ~reference () in
      check (cif ^ " vs " ^ v ^ " mismatches") true
        (r.Match.outcome = Match.Mismatch))
    verilog_seeded

(* ------------------------------------------------------------------ *)
(* Hierarchical LVS                                                   *)

let hier_run ?max_findings cif sp =
  let layout = extract_hier cif in
  let text = data_file sp in
  let reference =
    match Reference.load ~name:sp text with
    | Ok (c, _) -> c
    | Error _ -> Alcotest.fail (sp ^ " unreadable")
  in
  let ref_view = Reference.hier_view ~name:sp text in
  HierLvs.run ?max_findings ~layout ~reference ?ref_view ()

let test_hier_agrees_with_flat () =
  (* every corpus pair, clean and seeded: identical verdicts *)
  let pairs =
    clean_pairs
    @ List.map (fun (c, s, _) -> (c, s)) seeded_fixtures
    @ [ ("nand2.cif", "nand2.swapped.sp") ]
  in
  List.iter
    (fun (cif, sp) ->
      let flat_layout = extract_cif cif in
      let reference, _ = Reference.parse (data_file sp) in
      let flat = Match.run ~layout:flat_layout ~reference () in
      let h = hier_run cif sp in
      check
        (Printf.sprintf "%s vs %s: hier verdict equals flat" cif sp)
        true
        (h.HierLvs.r.Match.outcome = flat.Match.outcome))
    pairs

let test_hier_mesh_counters () =
  (* 16 identical cells: one structural compare, fifteen memo hits, no
     flat fallback *)
  let h = hier_run "mesh4x4.cif" "mesh4x4.sp" in
  check "mesh4x4 hier compare is clean" true
    (h.HierLvs.r.Match.outcome = Match.Clean);
  check "mesh4x4 stays on the hierarchical path" false h.HierLvs.fallback;
  check_int "each distinct cell is matched exactly once" 1
    h.HierLvs.cell_matches;
  check_int "the other fifteen instances hit the memo" 15
    h.HierLvs.cell_hits;
  (* re-running is deterministic *)
  let h2 = hier_run "mesh4x4.cif" "mesh4x4.sp" in
  check "hier re-run verdict is stable" true
    (h2.HierLvs.r.Match.outcome = h.HierLvs.r.Match.outcome
    && h2.HierLvs.cell_matches = h.HierLvs.cell_matches
    && h2.HierLvs.cell_hits = h.HierLvs.cell_hits)

let test_hier_cell_findings () =
  (* a hierarchical reference whose cell differs from the layout's: the
     fallback mismatch carries an lvs-cell-mismatch naming the cell *)
  let layout = extract_hier "mesh4x4.cif" in
  let text =
    ".SUBCKT CELL D G S\n\
     m1 d g s 0 enh l=9u w=9u\n\
     .ENDS\n"
    ^ String.concat "\n"
        (List.concat_map
           (fun r ->
             List.map
               (fun c ->
                 Printf.sprintf "x%d%d c%ds%d p%d c%ds%d cell" r c c (r + 1)
                   r c r)
               [ 0; 1; 2; 3 ])
           [ 0; 1; 2; 3 ])
    ^ "\n.END\n"
  in
  let reference =
    match Reference.load ~name:"wrong-cell" text with
    | Ok (c, _) -> c
    | Error _ -> Alcotest.fail "reference unreadable"
  in
  let ref_view = Reference.hier_view ~name:"wrong-cell" text in
  let h = HierLvs.run ~layout ~reference ?ref_view () in
  check "wrong cell sizes mismatch" true
    (h.HierLvs.r.Match.outcome = Match.Mismatch);
  check "verdict fell back to the flat compare" true h.HierLvs.fallback;
  check "lvs-cell-mismatch names the cell" true
    (List.exists
       (fun (f : Match.finding) -> f.Match.code = "lvs-cell-mismatch")
       h.HierLvs.r.Match.findings)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

(* Random two-terminal chain/finger networks between named nets, with
   all internal nets anonymous: the shape reduction is designed for. *)
let gen_chain_circuit =
  let open QCheck2.Gen in
  let* n_gates = int_range 1 3 in
  let* n_segments = int_range 1 5 in
  let* segments =
    list_size (return n_segments)
      (let* gate = int_range 0 (n_gates - 1) in
       let* dt =
         frequency
           [ (3, return Nmos.Enhancement); (1, return Nmos.Depletion) ]
       in
       let* w = frequency [ (2, return 500); (1, return 1000) ] in
       let* n_links = int_range 1 3 in
       let* fingers = int_range 1 2 in
       return (gate, dt, w, n_links, fingers))
  in
  return (n_gates, segments)

let build_chain (n_gates, segments) =
  (* nets: 0 = A, 1 = B, 2..2+n_gates-1 = gates, rest anonymous *)
  let nets = ref [ net ~names:[ "B" ] 1; net ~names:[ "A" ] 0 ] in
  let n_nets = ref 2 in
  let fresh ?names () =
    let i = !n_nets in
    incr n_nets;
    nets := net ?names i :: !nets;
    i
  in
  let gates =
    List.init n_gates (fun i ->
        fresh ~names:[ Printf.sprintf "G%d" i ] ())
  in
  let devices = ref [] in
  let n_dev = ref 0 in
  (* each segment is a series chain of n_links devices from A to B,
     replicated fingers times in parallel *)
  List.iter
    (fun (gi, dt, w, n_links, fingers) ->
      let gate = List.nth gates gi in
      for _ = 1 to fingers do
        let rec go from k =
          let next = if k = 1 then 1 else fresh () in
          devices :=
            dev ~dtype:dt ~g:gate ~s:from ~d:next ~w ~l:500 !n_dev
            :: !devices;
          incr n_dev;
          if k > 1 then go next (k - 1)
        in
        go 0 n_links
      done)
    segments;
  circuit (List.rev !devices) (List.rev !nets)

(* Switch-level conduction: which named nets are connected, for a given
   on/off assignment of the gate nets (depletion devices always conduct). *)
let conduction (c : Circuit.t) gate_on =
  let n = Array.length c.Circuit.nets in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j = parent.(find i) <- find j in
  Array.iter
    (fun (d : Circuit.device) ->
      let on =
        match d.Circuit.dtype with
        | Nmos.Depletion -> true
        | Nmos.Enhancement -> gate_on d.Circuit.gate
      in
      if on then union d.Circuit.source d.Circuit.drain)
    c.Circuit.devices;
  (* connectivity matrix over named nets only *)
  let named = ref [] in
  Array.iteri
    (fun i (nt : Circuit.net) ->
      if nt.Circuit.names <> [] then named := (nt.Circuit.names, i) :: !named)
    c.Circuit.nets;
  List.concat_map
    (fun (na, i) ->
      List.filter_map
        (fun (nb, j) ->
          if na < nb && find i = find j then Some (na, nb) else None)
        !named)
    !named
  |> List.sort compare

let prop_reduce_preserves_conduction =
  Tutil.qtest ~count:200 "reduction preserves switch-level conduction"
    gen_chain_circuit (fun spec ->
      let c = build_chain spec in
      let r = Reduce.reduce c in
      (* multiplicities account for every original device *)
      let absorbed = Array.fold_left ( + ) 0 r.Reduce.mult in
      let series_extra =
        (* series merges keep the chain's shared multiplicity, so only
           parallel merges add to the sum; the invariant is that no
           device is lost *)
        absorbed + r.Reduce.merged >= Circuit.device_count c
      in
      if not series_extra then false
      else begin
        (* exhaustive over gate assignments: gates are nets 2..n *)
        let gates =
          Array.to_list c.Circuit.nets
          |> List.mapi (fun i (nt : Circuit.net) -> (i, nt.Circuit.names))
          |> List.filter_map (fun (i, names) ->
                 if List.exists (fun s -> String.length s > 0 && s.[0] = 'G') names
                 then Some i
                 else None)
        in
        let rec assignments = function
          | [] -> [ fun _ -> false ]
          | g :: rest ->
              List.concat_map
                (fun f ->
                  [
                    (fun x -> if x = g then true else f x);
                    (fun x -> if x = g then false else f x);
                  ])
                (assignments rest)
        in
        List.for_all
          (fun f -> conduction c f = conduction r.Reduce.circuit f)
          (assignments gates)
      end)

let prop_compare_reflexive =
  Tutil.qtest ~count:100 "every chain circuit matches itself"
    gen_chain_circuit (fun spec ->
      let c = build_chain spec in
      (Match.run ~layout:c ~reference:c ()).Match.outcome = Match.Clean)

let mirror_code = function
  | "lvs-extra-device" -> "lvs-missing-device"
  | "lvs-missing-device" -> "lvs-extra-device"
  | "lvs-net-split" -> "lvs-net-merge"
  | "lvs-net-merge" -> "lvs-net-split"
  | c -> c

let prop_compare_symmetric =
  Tutil.qtest ~count:100 "comparison is symmetric up to finding polarity"
    QCheck2.Gen.(pair gen_chain_circuit gen_chain_circuit)
    (fun (sa, sb) ->
      let a = build_chain sa and b = build_chain sb in
      let fwd = Match.run ~layout:a ~reference:b ()
      and bwd = Match.run ~layout:b ~reference:a () in
      let codes r =
        List.sort String.compare
          (List.map (fun (f : Match.finding) -> f.Match.code) r.Match.findings)
      in
      fwd.Match.outcome = bwd.Match.outcome
      && codes fwd = List.sort String.compare (List.map mirror_code
           (List.map (fun (f : Match.finding) -> f.Match.code)
              bwd.Match.findings)))

let prop_self_lvs_through_spice =
  Tutil.qtest ~count:100 "SPICE round trip self-compares clean"
    gen_chain_circuit (fun spec ->
      let c = build_chain spec in
      let reference, diags = Reference.parse (Spice.to_string c) in
      (not (List.exists Diag.is_error diags))
      && (Match.run ~layout:c ~reference ()).Match.outcome = Match.Clean)

(* One series chain A..B of uniform devices, each link gated by a
   distinct named net, then a random permutation of the link gates, a
   random S/D flip per link, and optionally the whole chain reversed:
   canonicalization must keep every variant Clean against the
   identity-ordered original. *)
let gen_perm_chain =
  let open QCheck2.Gen in
  let* n_links = int_range 2 5 in
  let* perm = shuffle_l (List.init n_links Fun.id) in
  let* flips = list_size (return n_links) bool in
  let* reversed = bool in
  return (n_links, perm, flips, reversed)

let build_perm_chain n_links order flips reversed =
  (* nets: 0 = A, 1 = B, 2..2+n-1 = gates G<i>, then n-1 interiors *)
  let n_nets = 2 + n_links + (n_links - 1) in
  let nets =
    List.init n_nets (fun i ->
        if i = 0 then net ~names:[ "A" ] 0
        else if i = 1 then net ~names:[ "B" ] 1
        else if i < 2 + n_links then
          net ~names:[ Printf.sprintf "G%d" (i - 2) ] i
        else net i)
  in
  let endpoint pos =
    if pos = 0 then if reversed then 1 else 0
    else if pos = n_links then if reversed then 0 else 1
    else 2 + n_links + (pos - 1)
  in
  let devices =
    List.mapi
      (fun j g ->
        let s = endpoint j and d = endpoint (j + 1) in
        let s, d = if List.nth flips j then (d, s) else (s, d) in
        dev ~g:(2 + g) ~s ~d j)
      order
  in
  circuit devices nets

let prop_gate_permutation_invariant =
  Tutil.qtest ~count:200
    "series gate permutations and S/D swaps compare clean" gen_perm_chain
    (fun (n, perm, flips, reversed) ->
      let straight =
        build_perm_chain n (List.init n Fun.id)
          (List.map (fun _ -> false) flips)
          false
      in
      let permuted = build_perm_chain n perm flips reversed in
      (Match.run ~layout:straight ~reference:permuted ()).Match.outcome
      = Match.Clean)

(* Random repeated-cell layouts: one random leaf cell instantiated m
   times in a chain at the top, with the reference written back as a
   .SUBCKT plus X cards (optionally with one instance's channel pins
   swapped).  The hierarchical comparator must return the flat verdict
   on every one, and re-running (fresh memo) must be deterministic. *)
let gen_hier_layout =
  let open QCheck2.Gen in
  let* m = int_range 2 6 in
  let* wired =
    list_size (int_range 1 2)
      (triple (int_range 0 3) (int_range 0 3) (int_range 0 3))
  in
  let* damage =
    frequency [ (3, return None); (1, map Option.some (int_range 0 (m - 1))) ]
  in
  return (m, wired, damage)

let build_hier_layout (m, wired, _damage) =
  let cell_devs =
    List.mapi
      (fun j (g, s, d) ->
        let d = if d = s then (d + 1) mod 4 else d in
        {
          Hier.dtype = Nmos.Enhancement;
          gate = g;
          source = s;
          drain = d;
          length = 500;
          width = 500;
          location = Point.make j 0;
        })
      wired
  in
  let cell =
    {
      Hier.part_name = "CELL";
      net_count = 4;
      exports = [ 0; 1; 2 ];
      net_names = [];
      devices = cell_devs;
      instances = [];
    }
  in
  let top_nets = m + 1 + 2 in
  let top =
    {
      Hier.part_name = "TOP";
      net_count = top_nets;
      exports = [];
      net_names =
        List.init (m + 1) (fun i -> (i, Printf.sprintf "T%d" i))
        @ [ (m + 1, "P0"); (m + 2, "P1") ];
      devices = [];
      instances =
        List.init m (fun i ->
            {
              Hier.part_name = "CELL";
              inst_name = Printf.sprintf "X%d" i;
              offset = Point.make i 0;
              net_map = [ (0, i + 1); (1, m + 1 + (i mod 2)); (2, i) ];
            });
    }
  in
  { Hier.parts = [ cell; top ]; top = "TOP" }

let hier_reference_text (m, wired, damage) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ".SUBCKT CELL E0 E1 E2\n";
  List.iteri
    (fun j (g, s, d) ->
      let d = if d = s then (d + 1) mod 4 else d in
      let nm i = if i < 3 then Printf.sprintf "E%d" i else "N3" in
      Buffer.add_string buf
        (Printf.sprintf "M%d %s %s %s 0 ENH L=5U W=5U\n" (j + 1) (nm d)
           (nm g) (nm s)))
    wired;
  Buffer.add_string buf ".ENDS\n";
  for i = 0 to m - 1 do
    let a = Printf.sprintf "T%d" (i + 1)
    and g = Printf.sprintf "P%d" (i mod 2)
    and b = Printf.sprintf "T%d" i in
    let a, b = if damage = Some i then (b, a) else (a, b) in
    Buffer.add_string buf (Printf.sprintf "X%d %s %s %s CELL\n" i a g b)
  done;
  Buffer.add_string buf ".END\n";
  Buffer.contents buf

let prop_hier_agrees_with_flat =
  Tutil.qtest ~count:100 "hierarchical LVS returns the flat verdict"
    gen_hier_layout (fun spec ->
      let layout = build_hier_layout spec in
      let text = hier_reference_text spec in
      match Reference.load ~name:"gen" text with
      | Error _ -> false
      | Ok (reference, _) ->
          let ref_view = Reference.hier_view ~name:"gen" text in
          let flat =
            Match.run ~layout:(Hier.flatten layout) ~reference ()
          in
          let h = HierLvs.run ~layout ~reference ?ref_view () in
          let h2 = HierLvs.run ~layout ~reference ?ref_view () in
          h.HierLvs.r.Match.outcome = flat.Match.outcome
          && h2.HierLvs.r.Match.outcome = h.HierLvs.r.Match.outcome
          && h2.HierLvs.cell_matches = h.HierLvs.cell_matches
          && h2.HierLvs.cell_hits = h.HierLvs.cell_hits)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lvs"
    [
      ( "reference",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "lexing" `Quick test_parse_lexing;
          Alcotest.test_case "dimensions" `Quick test_parse_dims;
          Alcotest.test_case "hierarchy" `Quick test_parse_hierarchy;
          Alcotest.test_case "hierarchy errors" `Quick
            test_parse_hierarchy_errors;
          Alcotest.test_case "lenient" `Quick test_parse_lenient;
          Alcotest.test_case "wirelist sniff" `Quick test_load_sniffs_wirelist;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "parallel" `Quick test_reduce_parallel;
          Alcotest.test_case "series" `Quick test_reduce_series;
          Alcotest.test_case "names and gates" `Quick
            test_reduce_respects_names_and_gates;
        ] );
      ( "match",
        [
          Alcotest.test_case "corpus clean" `Quick test_corpus_clean;
          Alcotest.test_case "seeded mismatches" `Quick test_seeded_mismatches;
          Alcotest.test_case "size knobs" `Quick test_size_knobs;
          Alcotest.test_case "one-sided names" `Quick
            test_one_sided_names_harmless;
          Alcotest.test_case "shared names pin" `Quick test_shared_names_pin;
          Alcotest.test_case "canonicalize swapped nand" `Quick
            test_canonicalize_swapped_nand;
          Alcotest.test_case "max findings" `Quick test_max_findings;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "basics" `Quick test_verilog_basics;
          Alcotest.test_case "total on garbage" `Quick test_verilog_total;
          Alcotest.test_case "corpus" `Quick test_verilog_corpus;
        ] );
      ( "hier",
        [
          Alcotest.test_case "agrees with flat" `Quick
            test_hier_agrees_with_flat;
          Alcotest.test_case "mesh counters" `Quick test_hier_mesh_counters;
          Alcotest.test_case "cell findings" `Quick test_hier_cell_findings;
        ] );
      ( "report",
        [
          Alcotest.test_case "baseline round-trip" `Quick test_report_baseline;
          Alcotest.test_case "rules cover codes" `Quick
            test_report_rules_cover_codes;
        ] );
      ( "properties",
        [
          prop_reduce_preserves_conduction;
          prop_compare_reflexive;
          prop_compare_symmetric;
          prop_self_lvs_through_spice;
          prop_gate_permutation_invariant;
          prop_hier_agrees_with_flat;
        ] );
    ]
