(* test_lvs — the LVS engine: lenient reference parsing, series/parallel
   reduction, the seeded-refinement comparator, and waiver plumbing.

   The reduction property checks conduction equivalence against brute
   force: for every assignment of the (few) gate nets, the reduced
   circuit must connect exactly the same named nets as the original.
   The comparator properties check reflexivity (every circuit matches
   itself) and symmetry (swapping the sides flips finding polarity but
   nothing else). *)

open Ace_netlist
module Point = Ace_geom.Point
module Nmos = Ace_tech.Nmos
module Reference = Ace_lvs.Reference
module Reduce = Ace_lvs.Reduce
module Match = Ace_lvs.Match
module Report = Ace_lvs.Report
module Diag = Ace_diag.Diag

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Builders                                                           *)

let net ?(names = []) i =
  { Circuit.names; location = Point.make i 0; geometry = [] }

let dev ?(dtype = Nmos.Enhancement) ?(l = 500) ?(w = 500) ~g ~s ~d i =
  {
    Circuit.dtype;
    gate = g;
    source = s;
    drain = d;
    length = l;
    width = w;
    location = Point.make i 0;
    geometry = [];
  }

let circuit ?(name = "test") devices nets =
  {
    Circuit.name;
    devices = Array.of_list devices;
    nets = Array.of_list nets;
  }

let parse_ok text =
  let c, diags = Reference.parse text in
  check "parse emits no errors" true (not (List.exists Diag.is_error diags));
  c

let data_file file =
  let dir =
    List.find Sys.file_exists [ "../data"; "data"; "_build/default/data" ]
  in
  let ic = open_in_bin (Filename.concat dir file) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let extract_cif file =
  let ast, _ = Ace_cif.Parser.parse_string_lenient (data_file file) in
  let design, _ = Ace_cif.Design.of_ast_lenient ast in
  Ace_core.Parallel.extract ~jobs:1 ~name:(Filename.chop_extension file)
    design

let codes_of (r : Match.result) =
  List.sort_uniq String.compare
    (List.map (fun (f : Match.finding) -> f.Match.code) r.Match.findings)

(* ------------------------------------------------------------------ *)
(* Reference parser                                                   *)

let test_parse_basics () =
  let c =
    parse_ok
      "* an inverter\n\
       .MODEL ENH NMOS (LEVEL=1 VTO=1.0)\n\
       .MODEL DEP NMOS (LEVEL=1 VTO=-3.0)\n\
       M1 OUT INP 0 0 ENH L=5U W=5U\n\
       M2 VDD OUT OUT 0 DEP L=20U W=5U\n\
       .END\n"
  in
  check_int "two devices" 2 (Circuit.device_count c);
  let enh, depl = Circuit.device_type_counts c in
  check_int "one enhancement" 1 enh;
  check_int "one depletion" 1 depl;
  check "node 0 aliases GND" true (Circuit.find_net_opt c "GND" <> None);
  let d1 = c.Circuit.devices.(0) in
  check_int "L=5U is 500 centimicrons" 500 d1.Circuit.length;
  check_int "W=5U is 500 centimicrons" 500 d1.Circuit.width;
  check_int "L=20U is 2000 centimicrons" 2000
    c.Circuit.devices.(1).Circuit.length

let test_parse_lexing () =
  (* continuations, inline comments, parens/commas as whitespace,
     case-insensitive net identity *)
  let c =
    parse_ok
      "M1 OUT INP 0 0 ENH $ pull-down\n\
       + L=5U\n\
       + W=5U\n\
       M2 (VDD, out, OUT) 0 DEP L=20U W=5U\n"
  in
  check_int "continuation joins one card per device" 2
    (Circuit.device_count c);
  check "out and OUT are one net" true
    (Circuit.find_net_opt c "OUT" <> None
    && c.Circuit.devices.(1).Circuit.gate
       = c.Circuit.devices.(0).Circuit.drain
       || c.Circuit.devices.(1).Circuit.gate
          = c.Circuit.devices.(0).Circuit.source
       || c.Circuit.devices.(1).Circuit.source
          = c.Circuit.devices.(0).Circuit.drain)

let test_parse_dims () =
  let c = parse_ok "M1 A B C 0 ENH L=500N W=500\nM2 A B C 0 ENH\n" in
  check_int "500N is 50 centimicrons" 50 c.Circuit.devices.(0).Circuit.length;
  check_int "bare numbers are centimicrons" 500
    c.Circuit.devices.(0).Circuit.width;
  check_int "missing L means unknown (0)" 0
    c.Circuit.devices.(1).Circuit.length;
  let _, diags = Reference.parse "M1 A B C 0 ENH L=bogus W=5U\n" in
  check "malformed dimension is diagnosed" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-bad-number") diags)

let test_parse_hierarchy () =
  let c =
    parse_ok
      ".GLOBAL VDD\n\
       .SUBCKT INV IN OUT\n\
       M1 OUT IN 0 0 ENH L=5U W=5U\n\
       M2 VDD OUT OUT 0 DEP L=20U W=5U\n\
       .ENDS\n\
       X1 A B INV\n\
       X2 B C INV\n\
       .END\n"
  in
  check_int "two instances flatten to four devices" 4
    (Circuit.device_count c);
  check "pins bind across instances" true
    (Circuit.find_net_opt c "B" <> None);
  (* VDD is global: both instances share one net *)
  check "global VDD is shared" true (Circuit.find_net_opt c "VDD" <> None);
  (* connected: gnd, VDD, A, B, C = 5 *)
  check_int "five connected nets" 5
    (List.length (Circuit.connected_net_indices c))

let test_parse_hierarchy_errors () =
  let _, d1 = Reference.parse "X1 A B NOSUCH\n" in
  check "undefined subckt diagnosed" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-undefined-subckt") d1);
  let _, d2 =
    Reference.parse ".SUBCKT A P\nX1 P A\n.ENDS\nX2 Q A\n.END\n"
  in
  check "recursion diagnosed" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-recursive") d2);
  let _, d3 = Reference.parse ".SUBCKT INV IN OUT\nM1 OUT IN 0 0 ENH\n" in
  check "unterminated subckt diagnosed" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "lvs-ref-unterminated-subckt")
       d3)

let test_parse_lenient () =
  (* garbage lines become diagnostics; the good cards still parse *)
  let c, diags =
    Reference.parse
      "M1 OUT INP 0 0 ENH L=5U W=5U\n\
       this is not spice at all\n\
       M\n\
       M2 VDD OUT OUT 0 DEP L=20U W=5U\n"
  in
  check_int "good cards survive garbage" 2 (Circuit.device_count c);
  check "garbage is diagnosed" true (diags <> [])

let test_load_sniffs_wirelist () =
  let c = parse_ok "M1 OUT INP 0 0 ENH L=5U W=5U\n" in
  let wl = Wirelist.to_string c in
  (match Reference.load wl with
  | Ok (c', _) ->
      check_int "wirelist round-trips through load" (Circuit.device_count c)
        (Circuit.device_count c')
  | Error _ -> check "wirelist load" true false);
  match Reference.load "(DefPart garbage" with
  | Error d -> check_string "wirelist error code" "wirelist-error" d.Diag.code
  | Ok _ -> check "broken wirelist rejected" true false

(* ------------------------------------------------------------------ *)
(* Reduction                                                          *)

let test_reduce_parallel () =
  (* two identical fingers in parallel: widths and multiplicities add *)
  let nets = [ net ~names:[ "A" ] 0; net ~names:[ "B" ] 1; net ~names:[ "G" ] 2 ] in
  let c =
    circuit [ dev ~g:2 ~s:0 ~d:1 ~w:500 0; dev ~g:2 ~s:1 ~d:0 ~w:700 1 ] nets
  in
  let r = Reduce.reduce c in
  check_int "one device remains" 1
    (Circuit.device_count r.Reduce.circuit);
  check_int "widths add" 1200 r.Reduce.circuit.Circuit.devices.(0).Circuit.width;
  check_int "multiplicity 2" 2 r.Reduce.mult.(0);
  check_int "one merge" 1 r.Reduce.merged

let test_reduce_series () =
  (* chain A -mid- B through an anonymous net: lengths add *)
  let nets = [ net ~names:[ "A" ] 0; net 1; net ~names:[ "B" ] 2; net ~names:[ "G" ] 3 ] in
  let c =
    circuit [ dev ~g:3 ~s:0 ~d:1 ~l:500 0; dev ~g:3 ~s:1 ~d:2 ~l:700 1 ] nets
  in
  let r = Reduce.reduce c in
  check_int "series chain collapses" 1 (Circuit.device_count r.Reduce.circuit);
  check_int "lengths add" 1200
    r.Reduce.circuit.Circuit.devices.(0).Circuit.length;
  (* the surviving device spans A..B *)
  let d = r.Reduce.circuit.Circuit.devices.(0) in
  check "terminals span the chain" true
    (List.sort Int.compare [ d.Circuit.source; d.Circuit.drain ] = [ 0; 2 ])

let test_reduce_respects_names_and_gates () =
  (* a named internal net, or one carrying a gate terminal, never merges *)
  let named =
    circuit
      [ dev ~g:3 ~s:0 ~d:1 0; dev ~g:3 ~s:1 ~d:2 1 ]
      [ net ~names:[ "A" ] 0; net ~names:[ "MID" ] 1; net ~names:[ "B" ] 2;
        net ~names:[ "G" ] 3 ]
  in
  check_int "named internal net survives" 2
    (Circuit.device_count (Reduce.reduce named).Reduce.circuit);
  let gated =
    circuit
      [ dev ~g:3 ~s:0 ~d:1 0; dev ~g:3 ~s:1 ~d:2 1; dev ~g:1 ~s:3 ~d:3 2 ]
      [ net ~names:[ "A" ] 0; net 1; net ~names:[ "B" ] 2; net ~names:[ "G" ] 3 ]
  in
  check_int "gate-carrying internal net survives" 3
    (Circuit.device_count (Reduce.reduce gated).Reduce.circuit);
  (* but an unshared name stops blocking under a custom predicate *)
  let r = Reduce.reduce ~anonymous:(fun _ -> true) named in
  check_int "custom anonymity predicate unlocks the merge" 1
    (Circuit.device_count r.Reduce.circuit)

(* ------------------------------------------------------------------ *)
(* Comparator: golden corpus                                          *)

let clean_pairs =
  [
    ("inverter.cif", "inverter.sp");
    ("chain4.cif", "chain4.sp");
    ("nand2.cif", "nand2.sp");
    ("nor2.cif", "nor2.sp");
    ("mux2.cif", "mux2.sp");
    ("latch.cif", "latch.sp");
    ("mesh4x4.cif", "mesh4x4.sp");
  ]

let test_corpus_clean () =
  List.iter
    (fun (cif, sp) ->
      let layout = extract_cif cif in
      let reference, diags = Reference.parse (data_file sp) in
      check (sp ^ " parses cleanly") true
        (not (List.exists Diag.is_error diags));
      let r = Match.run ~layout ~reference () in
      check (cif ^ " vs " ^ sp ^ " is clean") true
        (r.Match.outcome = Match.Clean);
      check (cif ^ " matched every device") true
        (r.Match.stats.Match.matched > 0
        && r.Match.stats.Match.matched = r.Match.stats.Match.layout_devices))
    clean_pairs

let seeded_fixtures =
  [
    ("nand2.cif", "nand2.extra.sp", "lvs-extra-device");
    ("inverter.cif", "inverter.missing.sp", "lvs-missing-device");
    ("chain4.cif", "chain4.split.sp", "lvs-net-split");
    ("inverter.cif", "inverter.swapped.sp", "lvs-size-mismatch");
    ("inverter.cif", "inverter.merge.sp", "lvs-net-merge");
  ]

let test_seeded_mismatches () =
  List.iter
    (fun (cif, sp, code) ->
      let layout = extract_cif cif in
      let reference, _ = Reference.parse (data_file sp) in
      let r = Match.run ~layout ~reference () in
      check (sp ^ " mismatches") true (r.Match.outcome = Match.Mismatch);
      check
        (Printf.sprintf "%s produces %s (got: %s)" sp code
           (String.concat " " (codes_of r)))
        true
        (List.mem code (codes_of r)))
    seeded_fixtures

let test_size_knobs () =
  let layout = extract_cif "inverter.cif" in
  let reference, _ = Reference.parse (data_file "inverter.swapped.sp") in
  let strict = Match.run ~layout ~reference () in
  check "swapped W/L is a mismatch" true
    (strict.Match.outcome = Match.Mismatch);
  let tolerant = Match.run ~tolerance:0.8 ~layout ~reference () in
  check "an 80% tolerance forgives the swap" true
    (tolerant.Match.outcome = Match.Clean);
  let unsized = Match.run ~with_sizes:false ~layout ~reference () in
  check "--no-sizes forgives the swap" true
    (unsized.Match.outcome = Match.Clean)

let test_one_sided_names_harmless () =
  (* isomorphic circuits with entirely disjoint net names must compare
     clean: a name the other side does not know is not evidence *)
  let a = parse_ok "M1 X Y Z 0 ENH L=5U W=5U\nM2 P X Q 0 DEP L=5U W=5U\n" in
  let b =
    parse_ok "M1 EQ EH EZ 0 ENH L=5U W=5U\nM2 EP EQ ER 0 DEP L=5U W=5U\n"
  in
  let r = Match.run ~layout:a ~reference:b () in
  check "disjoint names still match" true (r.Match.outcome = Match.Clean)

let test_shared_names_pin () =
  (* same topology, but a shared unique name attached to structurally
     different nets must be reported *)
  let a = parse_ok "M1 OUT A GND 0 ENH L=5U W=5U\n" in
  let b = parse_ok "M1 A OUT GND 0 ENH L=5U W=5U\n" in
  let r = Match.run ~layout:a ~reference:b () in
  check "conflicting name hints surface" true
    (r.Match.outcome <> Match.Clean)

(* ------------------------------------------------------------------ *)
(* Report / waiver plumbing                                           *)

let test_report_baseline () =
  let layout = extract_cif "nand2.cif" in
  let reference, _ = Reference.parse (data_file "nand2.extra.sp") in
  let r = Match.run ~layout ~reference () in
  check "fixture yields findings" true (r.Match.findings <> []);
  let fps = List.map Report.fingerprint r.Match.findings in
  List.iter
    (fun fp -> check_int "fingerprint is 16 hex chars" 16 (String.length fp))
    fps;
  let path = Filename.temp_file "lvs" ".baseline" in
  Ace_lint.Baseline.save path (Ace_lint.Baseline.of_fingerprints fps);
  (match Ace_lint.Baseline.load path with
  | Ok b ->
      check "every finding is waived by its own baseline" true
        (List.for_all (fun fp -> Ace_lint.Baseline.mem b fp) fps);
      check "unknown fingerprints are not waived" false
        (Ace_lint.Baseline.mem b "0000000000000000")
  | Error m -> check ("baseline load: " ^ m) true false);
  Sys.remove path;
  (* fingerprints are stable across re-runs *)
  let r2 = Match.run ~layout ~reference () in
  check "fingerprints are deterministic" true
    (List.map Report.fingerprint r2.Match.findings = fps)

let test_report_rules_cover_codes () =
  let rules =
    List.map (fun r -> r.Ace_diag.Sarif.id) (Report.sarif_rules ())
  in
  let emitted = ref [] in
  List.iter
    (fun (cif, sp, _) ->
      let layout = extract_cif cif in
      let reference, _ = Reference.parse (data_file sp) in
      let r = Match.run ~layout ~reference () in
      emitted := codes_of r @ !emitted)
    seeded_fixtures;
  List.iter
    (fun code ->
      check (code ^ " is a registered SARIF rule") true
        (List.mem code rules))
    (List.sort_uniq String.compare !emitted);
  (* parser codes are registered too *)
  List.iter
    (fun code -> check (code ^ " registered") true (List.mem code rules))
    [ "lvs-ref-bad-card"; "lvs-ref-bad-number"; "lvs-ref-undefined-subckt" ];
  let d =
    Report.to_diag
      {
        Match.code = "lvs-extra-device";
        severity = Diag.Error;
        message = "m";
        anchor = "a";
        layout_net = None;
      }
  in
  check "to_diag keeps the code" true (d.Diag.code = "lvs-extra-device")

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

(* Random two-terminal chain/finger networks between named nets, with
   all internal nets anonymous: the shape reduction is designed for. *)
let gen_chain_circuit =
  let open QCheck2.Gen in
  let* n_gates = int_range 1 3 in
  let* n_segments = int_range 1 5 in
  let* segments =
    list_size (return n_segments)
      (let* gate = int_range 0 (n_gates - 1) in
       let* dt =
         frequency
           [ (3, return Nmos.Enhancement); (1, return Nmos.Depletion) ]
       in
       let* w = frequency [ (2, return 500); (1, return 1000) ] in
       let* n_links = int_range 1 3 in
       let* fingers = int_range 1 2 in
       return (gate, dt, w, n_links, fingers))
  in
  return (n_gates, segments)

let build_chain (n_gates, segments) =
  (* nets: 0 = A, 1 = B, 2..2+n_gates-1 = gates, rest anonymous *)
  let nets = ref [ net ~names:[ "B" ] 1; net ~names:[ "A" ] 0 ] in
  let n_nets = ref 2 in
  let fresh ?names () =
    let i = !n_nets in
    incr n_nets;
    nets := net ?names i :: !nets;
    i
  in
  let gates =
    List.init n_gates (fun i ->
        fresh ~names:[ Printf.sprintf "G%d" i ] ())
  in
  let devices = ref [] in
  let n_dev = ref 0 in
  (* each segment is a series chain of n_links devices from A to B,
     replicated fingers times in parallel *)
  List.iter
    (fun (gi, dt, w, n_links, fingers) ->
      let gate = List.nth gates gi in
      for _ = 1 to fingers do
        let rec go from k =
          let next = if k = 1 then 1 else fresh () in
          devices :=
            dev ~dtype:dt ~g:gate ~s:from ~d:next ~w ~l:500 !n_dev
            :: !devices;
          incr n_dev;
          if k > 1 then go next (k - 1)
        in
        go 0 n_links
      done)
    segments;
  circuit (List.rev !devices) (List.rev !nets)

(* Switch-level conduction: which named nets are connected, for a given
   on/off assignment of the gate nets (depletion devices always conduct). *)
let conduction (c : Circuit.t) gate_on =
  let n = Array.length c.Circuit.nets in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j = parent.(find i) <- find j in
  Array.iter
    (fun (d : Circuit.device) ->
      let on =
        match d.Circuit.dtype with
        | Nmos.Depletion -> true
        | Nmos.Enhancement -> gate_on d.Circuit.gate
      in
      if on then union d.Circuit.source d.Circuit.drain)
    c.Circuit.devices;
  (* connectivity matrix over named nets only *)
  let named = ref [] in
  Array.iteri
    (fun i (nt : Circuit.net) ->
      if nt.Circuit.names <> [] then named := (nt.Circuit.names, i) :: !named)
    c.Circuit.nets;
  List.concat_map
    (fun (na, i) ->
      List.filter_map
        (fun (nb, j) ->
          if na < nb && find i = find j then Some (na, nb) else None)
        !named)
    !named
  |> List.sort compare

let prop_reduce_preserves_conduction =
  Tutil.qtest ~count:200 "reduction preserves switch-level conduction"
    gen_chain_circuit (fun spec ->
      let c = build_chain spec in
      let r = Reduce.reduce c in
      (* multiplicities account for every original device *)
      let absorbed = Array.fold_left ( + ) 0 r.Reduce.mult in
      let series_extra =
        (* series merges keep the chain's shared multiplicity, so only
           parallel merges add to the sum; the invariant is that no
           device is lost *)
        absorbed + r.Reduce.merged >= Circuit.device_count c
      in
      if not series_extra then false
      else begin
        (* exhaustive over gate assignments: gates are nets 2..n *)
        let gates =
          Array.to_list c.Circuit.nets
          |> List.mapi (fun i (nt : Circuit.net) -> (i, nt.Circuit.names))
          |> List.filter_map (fun (i, names) ->
                 if List.exists (fun s -> String.length s > 0 && s.[0] = 'G') names
                 then Some i
                 else None)
        in
        let rec assignments = function
          | [] -> [ fun _ -> false ]
          | g :: rest ->
              List.concat_map
                (fun f ->
                  [
                    (fun x -> if x = g then true else f x);
                    (fun x -> if x = g then false else f x);
                  ])
                (assignments rest)
        in
        List.for_all
          (fun f -> conduction c f = conduction r.Reduce.circuit f)
          (assignments gates)
      end)

let prop_compare_reflexive =
  Tutil.qtest ~count:100 "every chain circuit matches itself"
    gen_chain_circuit (fun spec ->
      let c = build_chain spec in
      (Match.run ~layout:c ~reference:c ()).Match.outcome = Match.Clean)

let mirror_code = function
  | "lvs-extra-device" -> "lvs-missing-device"
  | "lvs-missing-device" -> "lvs-extra-device"
  | "lvs-net-split" -> "lvs-net-merge"
  | "lvs-net-merge" -> "lvs-net-split"
  | c -> c

let prop_compare_symmetric =
  Tutil.qtest ~count:100 "comparison is symmetric up to finding polarity"
    QCheck2.Gen.(pair gen_chain_circuit gen_chain_circuit)
    (fun (sa, sb) ->
      let a = build_chain sa and b = build_chain sb in
      let fwd = Match.run ~layout:a ~reference:b ()
      and bwd = Match.run ~layout:b ~reference:a () in
      let codes r =
        List.sort String.compare
          (List.map (fun (f : Match.finding) -> f.Match.code) r.Match.findings)
      in
      fwd.Match.outcome = bwd.Match.outcome
      && codes fwd = List.sort String.compare (List.map mirror_code
           (List.map (fun (f : Match.finding) -> f.Match.code)
              bwd.Match.findings)))

let prop_self_lvs_through_spice =
  Tutil.qtest ~count:100 "SPICE round trip self-compares clean"
    gen_chain_circuit (fun spec ->
      let c = build_chain spec in
      let reference, diags = Reference.parse (Spice.to_string c) in
      (not (List.exists Diag.is_error diags))
      && (Match.run ~layout:c ~reference ()).Match.outcome = Match.Clean)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lvs"
    [
      ( "reference",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "lexing" `Quick test_parse_lexing;
          Alcotest.test_case "dimensions" `Quick test_parse_dims;
          Alcotest.test_case "hierarchy" `Quick test_parse_hierarchy;
          Alcotest.test_case "hierarchy errors" `Quick
            test_parse_hierarchy_errors;
          Alcotest.test_case "lenient" `Quick test_parse_lenient;
          Alcotest.test_case "wirelist sniff" `Quick test_load_sniffs_wirelist;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "parallel" `Quick test_reduce_parallel;
          Alcotest.test_case "series" `Quick test_reduce_series;
          Alcotest.test_case "names and gates" `Quick
            test_reduce_respects_names_and_gates;
        ] );
      ( "match",
        [
          Alcotest.test_case "corpus clean" `Quick test_corpus_clean;
          Alcotest.test_case "seeded mismatches" `Quick test_seeded_mismatches;
          Alcotest.test_case "size knobs" `Quick test_size_knobs;
          Alcotest.test_case "one-sided names" `Quick
            test_one_sided_names_harmless;
          Alcotest.test_case "shared names pin" `Quick test_shared_names_pin;
        ] );
      ( "report",
        [
          Alcotest.test_case "baseline round-trip" `Quick test_report_baseline;
          Alcotest.test_case "rules cover codes" `Quick
            test_report_rules_cover_codes;
        ] );
      ( "properties",
        [
          prop_reduce_preserves_conduction;
          prop_compare_reflexive;
          prop_compare_symmetric;
          prop_self_lvs_through_spice;
        ] );
    ]
