(* Ace_lint unit tests: one hand-built fixture per rule code, plus the
   config, baseline and SARIF plumbing around the registry. *)

open Ace_netlist
module Lint = Ace_lint
module Finding = Lint.Finding

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fixture builders                                                    *)
(* ------------------------------------------------------------------ *)

let pt x y = Ace_geom.Point.make x y

let dev ?(dtype = Ace_tech.Nmos.Enhancement) ?(l = 250) ?(w = 250)
    ?(loc = Ace_geom.Point.origin) ~gate ~source ~drain () =
  {
    Circuit.dtype;
    gate;
    source;
    drain;
    length = l;
    width = w;
    location = loc;
    geometry = [];
  }

let net ?(names = []) ?(loc = Ace_geom.Point.origin) () =
  { Circuit.names; location = loc; geometry = [] }

let circuit ?(name = "fixture") devices nets =
  {
    Circuit.name;
    devices = Array.of_list devices;
    nets = Array.of_list nets;
  }

(* Standard rail layout: net 0 = VDD, net 1 = GND. *)
let rails = [ net ~names:[ "VDD" ] (); net ~names:[ "GND" ] () ]

(* The canonical clean inverter: depletion load (gate tied to OUT,
   L/W = 4) from VDD, enhancement pull-down (L/W = 1) to GND.  All
   dimensions are multiples of lambda = 250.  Nets: 0 VDD, 1 GND,
   2 IN, 3 OUT. *)
let clean_inverter ?(pulldown_l = 250) ?(pulldown_w = 250) () =
  circuit
    [
      dev ~dtype:Ace_tech.Nmos.Depletion ~l:1000 ~w:250 ~gate:3 ~source:0
        ~drain:3 ();
      dev ~l:pulldown_l ~w:pulldown_w ~loc:(pt 0 2000) ~gate:2 ~source:3
        ~drain:1 ();
    ]
    (rails @ [ net ~names:[ "IN" ] (); net ~names:[ "OUT" ] () ])

let run ?config ?vdd ?gnd c = Lint.Engine.run ?config ?vdd ?gnd c

let codes findings =
  List.sort_uniq compare (List.map (fun (f : Finding.t) -> f.code) findings)

let find_code findings code =
  List.find_opt (fun (f : Finding.t) -> f.code = code) findings

(* Assert the fixture reports [code] at [severity]. *)
let expect findings code severity =
  match find_code findings code with
  | None ->
      Alcotest.failf "expected finding %s, got: %s" code
        (String.concat ", " (codes findings))
  | Some f ->
      check_string
        (Printf.sprintf "%s severity" code)
        (Finding.severity_to_string severity)
        (Finding.severity_to_string f.severity)

let expect_absent findings code =
  check (Printf.sprintf "no %s finding" code) true (find_code findings code = None)

(* ------------------------------------------------------------------ *)
(* The zero-findings contract                                          *)
(* ------------------------------------------------------------------ *)

let test_clean_inverter () =
  let findings = run (clean_inverter ()) in
  check_int "clean inverter has zero findings" 0 (List.length findings)

(* ------------------------------------------------------------------ *)
(* Ported checks                                                       *)
(* ------------------------------------------------------------------ *)

let test_no_rail () =
  let c =
    circuit
      [ dev ~gate:0 ~source:1 ~drain:2 () ]
      [ net (); net (); net () ]
  in
  expect (run c) "no-rail" Finding.Info

let test_power_short () =
  let c = circuit [] [ net ~names:[ "VDD"; "GND" ] () ] in
  expect (run c) "power-short" Finding.Error

let test_malformed () =
  let c =
    circuit
      [ dev ~gate:2 ~source:2 ~drain:2 () ]
      (rails @ [ net ~names:[ "X" ] () ])
  in
  let findings = run c in
  expect findings "malformed" Finding.Error;
  (* a fully-merged channel is malformed, not self-gated *)
  expect_absent findings "self-gate"

let test_self_gate () =
  let c =
    circuit
      [ dev ~gate:2 ~source:2 ~drain:1 () ]
      (rails @ [ net ~names:[ "X" ] () ])
  in
  expect (run c) "self-gate" Finding.Warning

let test_ratio () =
  (* doubling the pull-down length halves k to 2 < 4 *)
  let findings = run (clean_inverter ~pulldown_l:500 ()) in
  expect findings "ratio" Finding.Warning;
  expect_absent (run (clean_inverter ())) "ratio"

let test_undriven () =
  (* IN is steered from an island net: a channel exists but reaches no
     rail, so IN floats at X *)
  let c =
    circuit
      [
        dev ~dtype:Ace_tech.Nmos.Depletion ~l:1000 ~w:250 ~gate:3 ~source:0
          ~drain:3 ();
        dev ~loc:(pt 0 2000) ~gate:2 ~source:3 ~drain:1 ();
        dev ~loc:(pt 0 4000) ~gate:3 ~source:2 ~drain:4 ();
      ]
      (rails @ [ net ~names:[ "IN" ] (); net ~names:[ "OUT" ] (); net () ])
  in
  let f = run c in
  expect f "undriven" Finding.Warning;
  match find_code f "undriven" with
  | Some { Finding.net = Some 2; _ } -> ()
  | _ -> Alcotest.fail "undriven should anchor on net IN"

let test_stuck () =
  (* S only ever connects to GND through channels, yet gates a device *)
  let c =
    circuit
      [
        dev ~dtype:Ace_tech.Nmos.Depletion ~l:1000 ~w:250 ~gate:3 ~source:0
          ~drain:3 ();
        dev ~loc:(pt 0 2000) ~gate:2 ~source:3 ~drain:1 ();
        dev ~loc:(pt 0 4000) ~gate:4 ~source:3 ~drain:1 ();
        dev ~loc:(pt 0 6000) ~gate:2 ~source:4 ~drain:1 ();
      ]
      (rails
      @ [ net ~names:[ "IN" ] (); net ~names:[ "OUT" ] (); net ~names:[ "S" ] () ])
  in
  expect (run c) "stuck" Finding.Warning

let test_floating_gate () =
  let c =
    circuit
      [
        dev ~dtype:Ace_tech.Nmos.Depletion ~l:1000 ~w:250 ~gate:3 ~source:0
          ~drain:3 ();
        dev ~loc:(pt 0 2000) ~gate:2 ~source:3 ~drain:1 ();
        dev ~loc:(pt 0 4000) ~gate:4 ~source:3 ~drain:1 ();
      ]
      (rails @ [ net ~names:[ "IN" ] (); net ~names:[ "OUT" ] (); net () ])
  in
  expect (run c) "floating-gate" Finding.Warning

let test_isolated () =
  let c =
    let inv = clean_inverter () in
    {
      inv with
      Circuit.nets = Array.append inv.Circuit.nets [| net ~loc:(pt 9 9) () |];
    }
  in
  expect (run c) "isolated" Finding.Info

(* ------------------------------------------------------------------ *)
(* New NMOS analyses                                                   *)
(* ------------------------------------------------------------------ *)

let test_pass_depth () =
  (* inverter output steered through four series pass transistors into a
     second inverter's gate: 4 threshold drops > the default limit 3 *)
  let chain_dev i (s, d) =
    dev ~loc:(pt 0 (8000 + (2000 * i))) ~gate:2 ~source:s ~drain:d ()
  in
  let c =
    circuit
      ([
         dev ~dtype:Ace_tech.Nmos.Depletion ~l:1000 ~w:250 ~gate:3 ~source:0
           ~drain:3 ();
         dev ~loc:(pt 0 2000) ~gate:2 ~source:3 ~drain:1 ();
         dev ~dtype:Ace_tech.Nmos.Depletion ~l:1000 ~w:250 ~loc:(pt 0 4000)
           ~gate:8 ~source:0 ~drain:8 ();
         dev ~loc:(pt 0 6000) ~gate:7 ~source:8 ~drain:1 ();
       ]
      @ List.mapi chain_dev [ (3, 4); (4, 5); (5, 6); (6, 7) ])
      (rails
      @ [
          net ~names:[ "IN" ] ();
          net ~names:[ "OUT" ] ();
          net ();
          net ();
          net ();
          net ();
          net ~names:[ "OUT2" ] ();
        ])
  in
  let f = run c in
  expect f "pass-depth" Finding.Warning;
  (* three drops is within budget: drop the last pass device and rewire
     the receiver to the depth-3 net *)
  let shallow =
    circuit
      ([
         dev ~dtype:Ace_tech.Nmos.Depletion ~l:1000 ~w:250 ~gate:3 ~source:0
           ~drain:3 ();
         dev ~loc:(pt 0 2000) ~gate:2 ~source:3 ~drain:1 ();
         dev ~dtype:Ace_tech.Nmos.Depletion ~l:1000 ~w:250 ~loc:(pt 0 4000)
           ~gate:7 ~source:0 ~drain:7 ();
         dev ~loc:(pt 0 6000) ~gate:6 ~source:7 ~drain:1 ();
       ]
      @ List.mapi chain_dev [ (3, 4); (4, 5); (5, 6) ])
      (rails
      @ [
          net ~names:[ "IN" ] ();
          net ~names:[ "OUT" ] ();
          net ();
          net ();
          net ();
          net ~names:[ "OUT2" ] ();
        ])
  in
  expect_absent (run shallow) "pass-depth"

let test_fanout () =
  let config =
    match Lint.Config.parse_binding Lint.Config.default "max-fanout=2" with
    | Ok cfg -> cfg
    | Error m -> Alcotest.fail m
  in
  let c =
    circuit
      [
        dev ~dtype:Ace_tech.Nmos.Depletion ~l:1000 ~w:250 ~gate:3 ~source:0
          ~drain:3 ();
        dev ~loc:(pt 0 2000) ~gate:2 ~source:3 ~drain:1 ();
        dev ~loc:(pt 0 4000) ~gate:2 ~source:3 ~drain:1 ();
        dev ~loc:(pt 0 6000) ~gate:2 ~source:3 ~drain:1 ();
      ]
      (rails @ [ net ~names:[ "IN" ] (); net ~names:[ "OUT" ] () ])
  in
  expect (run ~config c) "fanout" Finding.Warning;
  (* default limit of 16 leaves the same circuit clean *)
  expect_absent (run c) "fanout"

let test_sneak_path () =
  (* three enhancement channels in series rail to rail, no load: not a
     push-pull shape, so the path is a genuine sneak *)
  let c =
    circuit
      [
        dev ~gate:2 ~source:0 ~drain:5 ();
        dev ~loc:(pt 0 2000) ~gate:3 ~source:5 ~drain:6 ();
        dev ~loc:(pt 0 4000) ~gate:4 ~source:6 ~drain:1 ();
      ]
      (rails
      @ [
          net ~names:[ "A" ] ();
          net ~names:[ "B" ] ();
          net ~names:[ "C" ] ();
          net ();
          net ();
        ])
  in
  expect (run c) "sneak-path" Finding.Warning

let test_superbuffer () =
  (* push-pull: enhancement pull-up gated off-node + enhancement
     pull-down.  Recognized, and explicitly NOT a sneak path. *)
  let c =
    circuit
      [
        dev ~gate:2 ~source:0 ~drain:4 ();
        dev ~loc:(pt 0 2000) ~gate:3 ~source:4 ~drain:1 ();
      ]
      (rails
      @ [ net ~names:[ "IN" ] (); net ~names:[ "INB" ] (); net ~names:[ "OUT" ] () ])
  in
  let f = run c in
  expect f "superbuffer" Finding.Info;
  expect_absent f "sneak-path";
  expect_absent f "ratio"

let test_bootstrap_load () =
  (* depletion load with its gate on a separate (bootstrap) node *)
  let c =
    circuit
      [ dev ~dtype:Ace_tech.Nmos.Depletion ~l:500 ~w:250 ~gate:2 ~source:0 ~drain:3 () ]
      (rails @ [ net ~names:[ "BOOT" ] (); net ~names:[ "N" ] () ])
  in
  let f = run c in
  expect f "superbuffer" Finding.Info;
  expect_absent f "ratio"

let test_name_collision () =
  let c =
    circuit []
      (rails @ [ net ~names:[ "X" ] (); net ~names:[ "X" ] ~loc:(pt 9 9) () ])
  in
  expect (run c) "name-collision" Finding.Warning

let test_aliased_net () =
  let c = circuit [] (rails @ [ net ~names:[ "A"; "B" ] () ]) in
  expect (run c) "aliased-net" Finding.Info

let test_off_grid () =
  let f = run (clean_inverter ~pulldown_w:300 ()) in
  expect f "off-grid" Finding.Warning;
  (* 1000/250 over 250/300 is k = 4.8: off-grid must not drag in ratio *)
  expect_absent f "ratio"

(* ------------------------------------------------------------------ *)
(* Rails: case-insensitive fallback                                    *)
(* ------------------------------------------------------------------ *)

let test_case_insensitive_rails () =
  let lower (c : Circuit.t) =
    {
      c with
      Circuit.nets =
        Array.map
          (fun (n : Circuit.net) ->
            { n with Circuit.names = List.map String.lowercase_ascii n.names })
          c.Circuit.nets;
    }
  in
  let f = run (lower (clean_inverter ~pulldown_l:500 ())) in
  expect_absent f "no-rail";
  expect f "ratio" Finding.Warning;
  (* exact match still wins over a case-folded candidate *)
  check "exact rail match preferred" true
    (Lint.Engine.find_rail (clean_inverter ()) "VDD" = Some 0)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let test_config_parse () =
  let text = "# comment line\nratio = error\n\nisolated=off\nmax-fanout=8\n" in
  match Lint.Config.parse ~file:"test.rules" Lint.Config.default text with
  | Error m -> Alcotest.fail m
  | Ok cfg ->
      check_int "max-fanout" 8 cfg.Lint.Config.max_fanout;
      let sev rule_code =
        match Lint.Rules.find rule_code with
        | None -> Alcotest.failf "unknown rule %s" rule_code
        | Some r -> Lint.Config.severity_for cfg r
      in
      check "ratio raised to error" true (sev "ratio" = Some Finding.Error);
      check "isolated disabled" true (sev "isolated" = None);
      check "others keep defaults" true (sev "fanout" = Some Finding.Warning)

let test_config_errors () =
  let bad spec =
    match Lint.Config.parse_binding Lint.Config.default spec with
    | Ok _ -> Alcotest.failf "%S should be rejected" spec
    | Error _ -> ()
  in
  bad "no-such-rule=warn";
  bad "ratio=sometimes";
  bad "max-fanout=0";
  bad "ratio";
  (* parse errors carry file:line *)
  match Lint.Config.parse ~file:"r.conf" Lint.Config.default "ratio=off\nbogus=1\n" with
  | Ok _ -> Alcotest.fail "bogus key accepted"
  | Error m ->
      check "error names the line" true
        (String.length m >= 9 && String.sub m 0 9 = "r.conf:2:")

let test_config_overrides_engine () =
  let cfg spec =
    match Lint.Config.parse_binding Lint.Config.default spec with
    | Ok cfg -> cfg
    | Error m -> Alcotest.fail m
  in
  let weak = clean_inverter ~pulldown_l:500 () in
  expect_absent (run ~config:(cfg "ratio=off") weak) "ratio";
  expect (run ~config:(cfg "ratio=error") weak) "ratio" Finding.Error;
  (* newest binding wins *)
  let both =
    match Lint.Config.parse_binding (cfg "ratio=off") "ratio=info" with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  expect (run ~config:both weak) "ratio" Finding.Info

(* ------------------------------------------------------------------ *)
(* Fingerprints and waiver baselines                                   *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_stability () =
  let c = clean_inverter ~pulldown_l:500 () in
  let f1 = run c and f2 = run c in
  let fp c fs = List.map (Finding.fingerprint c) fs in
  Alcotest.(check (list string)) "deterministic" (fp c f1) (fp c f2);
  (* independent of device array order: fingerprints use layout location,
     not indices *)
  let swapped =
    {
      c with
      Circuit.devices =
        (let d = c.Circuit.devices in
         [| d.(1); d.(0) |]);
    }
  in
  Alcotest.(check (list string))
    "index-independent"
    (List.sort compare (fp c (run c)))
    (List.sort compare (fp swapped (run swapped)))

let test_baseline_round_trip () =
  (* the acceptance scenario: baseline an accepted finding, then inject a
     new one — the old is waived, the new still fails the run *)
  let old_dev = dev ~gate:2 ~source:2 ~drain:2 () in
  let new_dev = dev ~loc:(pt 5000 5000) ~gate:3 ~source:3 ~drain:3 () in
  let nets = rails @ [ net ~names:[ "X" ] (); net ~names:[ "Y" ] () ] in
  let before = circuit [ old_dev ] nets in
  let after = circuit [ old_dev; new_dev ] nets in
  let baseline =
    Lint.Baseline.of_fingerprints
      (List.map (Finding.fingerprint before) (run before))
  in
  let kept, waived =
    List.partition
      (fun f -> not (Lint.Baseline.mem baseline (Finding.fingerprint after f)))
      (run after)
  in
  (* each malformed device also makes its net undriven, so both runs
     report two findings per device; what matters is the split *)
  check_int "old findings waived" 2 (List.length waived);
  check_int "new findings survive" 2 (List.length kept);
  expect waived "malformed" Finding.Error;
  expect kept "malformed" Finding.Error;
  (match find_code kept "malformed" with
  | Some { Finding.device = Some 1; _ } -> ()
  | _ -> Alcotest.fail "the surviving malformed finding is the new device");
  (* and the JSON serialization round-trips through a file *)
  let path = Filename.temp_file "ace_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lint.Baseline.save path baseline;
      match Lint.Baseline.load path with
      | Error m -> Alcotest.fail m
      | Ok loaded ->
          Alcotest.(check (list string))
            "fingerprints survive save/load"
            (Lint.Baseline.fingerprints baseline)
            (Lint.Baseline.fingerprints loaded))

let test_baseline_json_tolerance () =
  let b =
    match
      Lint.Baseline.of_json
        {|{"tool":"acecheck","future-key":true,"fingerprints":["a","b","a"],"version":1}|}
    with
    | Ok b -> b
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check (list string)) "parsed" [ "a"; "b" ] (Lint.Baseline.fingerprints b);
  check "missing list is an error" true
    (Result.is_error (Lint.Baseline.of_json {|{"version":1}|}))

(* ------------------------------------------------------------------ *)
(* SARIF rendering                                                     *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_sarif_shape () =
  let c = clean_inverter ~pulldown_l:500 () in
  let findings = run c in
  let rules =
    List.map
      (fun (r : Lint.Rule.t) ->
        {
          Ace_diag.Sarif.id = r.code;
          summary = r.summary;
          help = r.doc;
          level = Finding.sarif_level r.default;
        })
      Lint.Rules.all
  in
  let results =
    List.map
      (fun f ->
        Ace_diag.Sarif.of_diag ~uri:"weak.cif"
          ~fingerprint:(Finding.fingerprint c f)
          (Finding.to_diag c f))
      findings
  in
  let log = Ace_diag.Sarif.render ~tool:"acecheck" ~rules results in
  List.iter
    (fun needle ->
      check (Printf.sprintf "log contains %s" needle) true (contains log needle))
    [
      {|"version":"2.1.0"|};
      {|"name":"acecheck"|};
      {|"ruleId":"ratio"|};
      {|"level":"warning"|};
      {|"locations"|};
      {|"uri":"weak.cif"|};
      {|"startLine":1|};
      {|"partialFingerprints"|};
      {|"acePrint/v1"|};
      (* registry metadata travels with the log *)
      {|"id":"power-short"|};
    ];
  (* the log is a single parseable JSON value as far as our own scanner is
     concerned: reuse the baseline reader on an embedded fingerprints key *)
  check "renders non-empty" true (String.length log > 0)

let test_registry_complete () =
  (* every registered rule has a doc string and a stable kebab-case code *)
  List.iter
    (fun (r : Lint.Rule.t) ->
      check (r.code ^ " has docs") true (String.length r.doc > 0);
      check (r.code ^ " is kebab-case") true
        (String.for_all
           (fun ch -> (ch >= 'a' && ch <= 'z') || ch = '-')
           r.code))
    Lint.Rules.all;
  check_int "registry size" 21 (List.length Lint.Rules.all);
  check "find resolves" true (Lint.Rules.find "sneak-path" <> None);
  check "find rejects unknown" true (Lint.Rules.find "nope" = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "clean inverter" `Quick test_clean_inverter;
          Alcotest.test_case "no-rail" `Quick test_no_rail;
          Alcotest.test_case "power-short" `Quick test_power_short;
          Alcotest.test_case "malformed" `Quick test_malformed;
          Alcotest.test_case "self-gate" `Quick test_self_gate;
          Alcotest.test_case "ratio" `Quick test_ratio;
          Alcotest.test_case "undriven" `Quick test_undriven;
          Alcotest.test_case "stuck" `Quick test_stuck;
          Alcotest.test_case "floating-gate" `Quick test_floating_gate;
          Alcotest.test_case "isolated" `Quick test_isolated;
          Alcotest.test_case "pass-depth" `Quick test_pass_depth;
          Alcotest.test_case "fanout" `Quick test_fanout;
          Alcotest.test_case "sneak-path" `Quick test_sneak_path;
          Alcotest.test_case "superbuffer" `Quick test_superbuffer;
          Alcotest.test_case "bootstrap load" `Quick test_bootstrap_load;
          Alcotest.test_case "name-collision" `Quick test_name_collision;
          Alcotest.test_case "aliased-net" `Quick test_aliased_net;
          Alcotest.test_case "off-grid" `Quick test_off_grid;
          Alcotest.test_case "registry" `Quick test_registry_complete;
        ] );
      ( "rails",
        [
          Alcotest.test_case "case-insensitive fallback" `Quick
            test_case_insensitive_rails;
        ] );
      ( "config",
        [
          Alcotest.test_case "parse" `Quick test_config_parse;
          Alcotest.test_case "errors" `Quick test_config_errors;
          Alcotest.test_case "overrides" `Quick test_config_overrides_engine;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "fingerprint stability" `Quick
            test_fingerprint_stability;
          Alcotest.test_case "round trip" `Quick test_baseline_round_trip;
          Alcotest.test_case "json tolerance" `Quick
            test_baseline_json_tolerance;
        ] );
      ( "sarif",
        [ Alcotest.test_case "log shape" `Quick test_sarif_shape ] );
    ]
