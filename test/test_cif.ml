open Ace_geom
open Ace_tech

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Ace_cif.Parser.parse_string
let design_of s = Ace_cif.Design.of_ast (parse s)

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_box () =
  let f = parse "L ND; B 4 2 10 20; E" in
  match f.Ace_cif.Ast.top_level with
  | [ Ace_cif.Ast.Shape { layer = "ND"; shape = Ace_cif.Ast.Box b } ] ->
      check_int "length" 4 b.length;
      check_int "width" 2 b.width;
      check "center" true (Point.equal b.center (Point.make 10 20));
      check "no direction" true (b.direction = None)
  | _ -> Alcotest.fail "unexpected AST"

let test_parse_box_direction () =
  let f = parse "L NP; B 4 2 0 0 0 -1; E" in
  match f.Ace_cif.Ast.top_level with
  | [ Ace_cif.Ast.Shape { shape = Ace_cif.Ast.Box b; _ } ] ->
      check "direction" true (b.direction = Some (Point.make 0 (-1)))
  | _ -> Alcotest.fail "unexpected AST"

let test_parse_polygon_wire_flash () =
  let f = parse "L NM; P 0 0 10 0 10 10; W 2 0 0 5 0; R 6 3 3; E" in
  check_int "three shapes" 3 (List.length f.Ace_cif.Ast.top_level)

let test_parse_separators () =
  (* CIF allows exotic blank characters and comma separators *)
  let f = parse "L ND;\n  B4 2 10,20;\n(a (nested) comment;) E" in
  check_int "one shape" 1 (List.length f.Ace_cif.Ast.top_level)

let test_parse_symbols () =
  let f = parse "DS 1; 9 cell; L ND; B 2 2 0 0; DF; C 1 T 10 0; E" in
  (match f.Ace_cif.Ast.symbols with
  | [ { Ace_cif.Ast.id = 1; name = Some "cell"; elements = [ _ ] } ] -> ()
  | _ -> Alcotest.fail "symbol not parsed");
  match f.Ace_cif.Ast.top_level with
  | [ Ace_cif.Ast.Call { symbol = 1; ops = [ Ace_cif.Ast.Translate (10, 0) ] } ]
    -> ()
  | _ -> Alcotest.fail "call not parsed"

let test_parse_scale () =
  (* DS 1 2 1: distances inside are doubled *)
  let f = parse "DS 1 2 1; L ND; B 2 2 5 5; DF; C 1; E" in
  match f.Ace_cif.Ast.symbols with
  | [ { Ace_cif.Ast.elements = [ Ace_cif.Ast.Shape { shape = Ace_cif.Ast.Box b; _ } ]; _ } ] ->
      check_int "scaled length" 4 b.length;
      check "scaled center" true (Point.equal b.center (Point.make 10 10))
  | _ -> Alcotest.fail "unexpected AST"

let test_parse_transform_chain () =
  let f = parse "DS 1; L ND; B 2 2 0 0; DF; C 1 M X T 4 0 R 0 1; E" in
  match f.Ace_cif.Ast.top_level with
  | [ Ace_cif.Ast.Call { ops; _ } ] ->
      check_int "three ops" 3 (List.length ops)
  | _ -> Alcotest.fail "unexpected AST"

let test_parse_label () =
  let f = parse "L NM; B 2 2 0 0; 94 VDD 0 0 NM; 94 foo -3 4; E" in
  let labels =
    List.filter_map
      (function
        | Ace_cif.Ast.Label { name; position; layer } ->
            Some (name, position, layer)
        | Ace_cif.Ast.Shape _ | Ace_cif.Ast.Call _ | Ace_cif.Ast.Comment_ext _ ->
            None)
      f.Ace_cif.Ast.top_level
  in
  check_int "two labels" 2 (List.length labels);
  match labels with
  | [ (_, _, layer_a); (_, pos_b, layer_b) ] ->
      check "named layer" true (layer_a = Some "NM");
      check "layerless" true (layer_b = None);
      check "negative coords" true (Point.equal pos_b (Point.make (-3) 4))
  | _ -> assert false

let test_parse_user_extension () =
  let f = parse "0 arbitrary user text 1 2 3; L ND; B 2 2 0 0; E" in
  check_int "kept verbatim" 2 (List.length f.Ace_cif.Ast.top_level)

let expect_parse_error src =
  match parse src with
  | exception Ace_cif.Parser.Error _ -> ()
  | _ -> Alcotest.failf "expected a parse error for %S" src

let test_parse_errors () =
  expect_parse_error "L ND; B 2 2 0; E";
  (* missing coordinate *)
  expect_parse_error "B 2 2 0 0; E";
  (* geometry before any layer *)
  expect_parse_error "DS 1; L ND; B 2 2 0 0; E";
  (* unterminated definition *)
  expect_parse_error "DF; E";
  (* DF without DS *)
  expect_parse_error "L ND; B 2 2 0 0;";
  (* missing E *)
  expect_parse_error "Q 1 2; E";
  (* unknown command *)
  expect_parse_error "(unterminated comment E"

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_describe_error () =
  let src = "L ND;\nB 2 2 0;\nE" in
  match parse src with
  | exception Ace_cif.Parser.Error { position; message } ->
      let d = Ace_cif.Parser.describe_error ~source:src ~position ~message in
      check "mentions line 2" true (contains_substring d "line 2")
  | _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Writer round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let prop_roundtrip =
  Tutil.qtest ~count:200 "writer/parser round-trip" Tutil.gen_design
    (fun file ->
      let text = Ace_cif.Writer.to_string file in
      let file' = parse text in
      file = file')

let test_roundtrip_labels () =
  let src = "DS 1; L ND; B 2 2 0 0; 94 OUT 1 1 ND; DF; C 1 T 4 4; 94 IN 0 0; E" in
  let f = parse src in
  let f' = parse (Ace_cif.Writer.to_string f) in
  check "stable" true (f = f')

(* ------------------------------------------------------------------ *)
(* Design semantic checks                                               *)
(* ------------------------------------------------------------------ *)

let expect_semantic_error src =
  match design_of src with
  | exception Ace_cif.Design.Semantic_error _ -> ()
  | _ -> Alcotest.failf "expected a semantic error for %S" src

let test_semantic_errors () =
  expect_semantic_error "L XX; B 2 2 0 0; E";
  (* unknown layer *)
  expect_semantic_error "C 7; E";
  (* undefined symbol *)
  expect_semantic_error "DS 1; C 1; DF; C 1; E";
  (* recursion *)
  expect_semantic_error "DS 1; L ND; B 2 2 0 0; DF; DS 1; DF; C 1; E";
  (* duplicate definition *)
  expect_semantic_error "DS 1; L ND; B 2 2 0 0; DF; C 1 R 1 1; E"
(* 45-degree rotation: rejected when the transform is evaluated *)

let test_mutual_recursion () =
  (* DD lets mutually-referencing text parse; of_ast must still reject *)
  match
    Ace_cif.Design.of_ast
      {
        Ace_cif.Ast.symbols =
          [
            { Ace_cif.Ast.id = 1; name = None;
              elements = [ Ace_cif.Ast.Call { symbol = 2; ops = [] } ] };
            { Ace_cif.Ast.id = 2; name = None;
              elements = [ Ace_cif.Ast.Call { symbol = 1; ops = [] } ] };
          ];
        top_level = [ Ace_cif.Ast.Call { symbol = 1; ops = [] } ];
      }
  with
  | exception Ace_cif.Design.Semantic_error _ -> ()
  | _ -> Alcotest.fail "mutual recursion not detected"

let test_bbox_and_counts () =
  let d =
    design_of
      "DS 1; L ND; B 4 4 0 0; B 2 2 10 10; DF; DS 2; C 1; C 1 T 20 0; DF; C 2; C 2 T 0 40; E"
  in
  check_int "boxes = 2 per cell x 2 cells x 2 arrays" 8
    (Ace_cif.Design.count_boxes d);
  check_int "instances" 6 (Ace_cif.Design.count_instances d);
  match Ace_cif.Design.bbox d with
  | Some bb ->
      check_int "bbox l" (-2) bb.Box.l;
      check_int "bbox r" 31 bb.Box.r
  | None -> Alcotest.fail "no bbox"

(* ------------------------------------------------------------------ *)
(* Flatten and Stream agreement                                         *)
(* ------------------------------------------------------------------ *)

let normalize boxes =
  List.sort Stdlib.compare
    (List.map (fun (lyr, bx) -> (Layer.index lyr, bx)) boxes)

let prop_stream_matches_flatten =
  Tutil.qtest ~count:200 "lazy stream yields exactly the flattened geometry"
    Tutil.gen_design
    (fun file ->
      match Ace_cif.Design.of_ast file with
      | exception Ace_cif.Design.Semantic_error _ -> true (* skip *)
      | design ->
          let flat = Ace_cif.Flatten.flatten design in
          let streamed = Ace_cif.Stream.drain (Ace_cif.Stream.create design) in
          normalize flat = normalize streamed)

let prop_stream_sorted =
  Tutil.qtest ~count:100 "stream stops are strictly descending" Tutil.gen_design
    (fun file ->
      match Ace_cif.Design.of_ast file with
      | exception Ace_cif.Design.Semantic_error _ -> true
      | design ->
          let stream = Ace_cif.Stream.create design in
          let rec go last =
            match Ace_cif.Stream.peek_top stream with
            | None -> true
            | Some y ->
                let boxes = Ace_cif.Stream.pop_at stream y in
                List.for_all (fun (_, (b : Box.t)) -> b.t = y) boxes
                && (match last with None -> true | Some prev -> y < prev)
                && go (Some y)
          in
          go None)

let test_stream_lazy_expansion () =
  (* a symbol placed far below another is only expanded when reached *)
  let d =
    design_of
      "DS 1; L ND; B 2 2 0 0; DF; C 1; C 1 T 0 -1000; E"
  in
  let stream = Ace_cif.Stream.create d in
  (match Ace_cif.Stream.peek_top stream with
  | Some y -> check_int "first stop" 1 y
  | None -> Alcotest.fail "empty stream");
  ignore (Ace_cif.Stream.pop_at stream 1);
  check_int "only the reachable instance expanded so far" 1
    (Ace_cif.Stream.expansions stream);
  ignore (Ace_cif.Stream.drain stream);
  check_int "both expanded at the end" 2 (Ace_cif.Stream.expansions stream)

let test_labels_transformed () =
  let d =
    design_of "DS 1; L ND; B 2 2 0 0; 94 A 1 2 ND; DF; C 1 T 10 20; C 1 M X; E"
  in
  let labels = Ace_cif.Design.labels d in
  check_int "two instances of the label" 2 (List.length labels);
  let positions = List.map (fun (l : Ace_cif.Design.label) -> l.position) labels in
  check "translated" true (List.exists (Point.equal (Point.make 11 22)) positions);
  check "mirrored" true (List.exists (Point.equal (Point.make (-1) 2)) positions)

let test_dd_command () =
  (* DD n deletes definitions numbered >= n *)
  let f = parse "DS 1; L ND; B 2 2 0 0; DF; DS 5; L NP; B 2 2 0 0; DF; DD 5; C 1; E" in
  check_int "one symbol survives" 1 (List.length f.Ace_cif.Ast.symbols)

let test_comment_everywhere () =
  let f =
    parse "(header); L ND; (mid) B 2 2 (inline (nested)) 0 0; (tail) E"
  in
  check_int "one shape" 1 (List.length f.Ace_cif.Ast.top_level)

let test_call_without_transform () =
  let f = parse "DS 1; L ND; B 2 2 0 0; DF; C 1; E" in
  match f.Ace_cif.Ast.top_level with
  | [ Ace_cif.Ast.Call { ops = []; _ } ] -> ()
  | _ -> Alcotest.fail "expected a bare call"

let test_negative_everything () =
  let d = design_of "L ND; B 4 2 -10 -20; E" in
  match Ace_cif.Design.bbox d with
  | Some bb ->
      check_int "l" (-12) bb.Box.l;
      check_int "b" (-21) bb.Box.b
  | None -> Alcotest.fail "no bbox"

let test_stats () =
  let d = design_of "DS 1; L ND; B 4 2 2 1; L NP; B 2 6 5 1; DF; C 1; C 1 T 20 0; E" in
  let s = Ace_cif.Stats.of_design d in
  check_int "boxes" 4 s.Ace_cif.Stats.boxes;
  check_int "diffusion boxes" 2
    (List.assoc Layer.Diffusion s.Ace_cif.Stats.boxes_per_layer);
  check "mean width" true (abs_float (s.Ace_cif.Stats.mean_width -. 3.0) < 0.01);
  check_int "geometry area" (2 * (8 + 12)) s.Ace_cif.Stats.geometry_area;
  check_int "distinct tops" 2 s.Ace_cif.Stats.distinct_tops

let test_stats_empty () =
  let d = design_of "E" in
  let s = Ace_cif.Stats.of_design d in
  check_int "no boxes" 0 s.Ace_cif.Stats.boxes;
  check "zero density" true (s.Ace_cif.Stats.density = 0.0)

let test_sample_corpus () =
  (* the data/ corpus: parses, extracts, and HEXT agrees with ACE *)
  let dir =
    (* cwd differs between `dune runtest` (the build test dir) and
       `dune exec` (the project root) *)
    List.find Sys.file_exists [ "../data"; "data"; "_build/default/data" ]
  in
  let files = Sys.readdir dir in
  let cifs =
    Array.to_list files
    |> List.filter (fun f ->
           Filename.check_suffix f ".cif"
           (* broken*.cif is the malformed-input corpus for the
              diagnostics tests; it does not parse strictly by design *)
           && not (String.starts_with ~prefix:"broken" f))
  in
  check "corpus present" true (List.length cifs >= 4);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let d =
        match Ace_cif.Parser.parse_file path with
        | ast -> Ace_cif.Design.of_ast ast
        | exception Ace_cif.Parser.Error _ ->
            Alcotest.failf "%s does not parse" f
      in
      let flat = Ace_core.Extractor.extract d in
      check (f ^ " extracts") true (Ace_netlist.Circuit.validate flat = []);
      let hc, _ = Ace_hext.Hext.extract_flat d in
      check (f ^ " hext agrees") true
        (Tutil.circuit_equal ~with_sizes:true flat hc))
    cifs

(* ------------------------------------------------------------------ *)
(* mmap lexer path                                                      *)
(* ------------------------------------------------------------------ *)

let data_dir () =
  List.find Sys.file_exists [ "../data"; "data"; "_build/default/data" ]

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every data/*.cif — including the broken corpus — must produce the same
   AST and the same diagnostics through the zero-copy mapped path as
   through the in-memory string path, strict and lenient. *)
let test_mmap_corpus () =
  let dir = data_dir () in
  let cifs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cif")
  in
  check "corpus present" true (List.length cifs >= 5);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let text = slurp path in
      let input = Ace_cif.Parser.open_file path in
      check (f ^ " is mapped") true (Ace_cif.Parser.input_is_mapped input);
      check_int (f ^ " mapped length") (String.length text)
        (Ace_cif.Parser.input_length input);
      check (f ^ " materializes identically") true
        (Ace_cif.Parser.input_to_string input = text);
      let ast_m, diags_m = Ace_cif.Parser.parse_input_lenient input in
      let ast_s, diags_s = Ace_cif.Parser.parse_string_lenient text in
      check (f ^ " lenient AST equal") true (ast_m = ast_s);
      check (f ^ " lenient diags equal") true (diags_m = diags_s);
      let strict i =
        match Ace_cif.Parser.parse_input i with
        | ast -> Ok ast
        | exception Ace_cif.Parser.Error { position; message } ->
            Error (position, message)
      in
      check (f ^ " strict outcome equal") true
        (strict input = strict (Ace_cif.Parser.input_of_string text)))
    cifs

(* Parse errors must not leak the mapped file's descriptor: repeating the
   open/parse cycle well past the default fd limit only works if every
   exit path (including the error one) closes the fd. *)
let test_mmap_broken_no_leak () =
  let path = Filename.concat (data_dir ()) "broken.cif" in
  let text = slurp path in
  let expected =
    match Ace_cif.Parser.parse_string text with
    | _ -> Alcotest.fail "broken.cif parsed strictly?"
    | exception Ace_cif.Parser.Error { position; message } -> (position, message)
  in
  for _ = 1 to 2048 do
    match Ace_cif.Parser.parse_file path with
    | _ -> Alcotest.fail "broken.cif parsed strictly via mmap?"
    | exception Ace_cif.Parser.Error { position; message } ->
        if (position, message) <> expected then
          Alcotest.fail "mmap parse error differs from string parse error"
  done;
  (* the lenient mapped path reports the identical recovery diagnostics *)
  let _, diags_m = Ace_cif.Parser.parse_input_lenient (Ace_cif.Parser.open_file path) in
  let _, diags_s = Ace_cif.Parser.parse_string_lenient text in
  check "broken.cif lenient diags equal" true (diags_m = diags_s)

let test_mmap_edge_files () =
  (* empty regular file: not mapped, parses like "" *)
  let empty = Filename.temp_file "ace_mmap" ".cif" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove empty with Sys_error _ -> ())
    (fun () ->
      let input = Ace_cif.Parser.open_file empty in
      check "empty file not mapped" false (Ace_cif.Parser.input_is_mapped input);
      check_int "empty length" 0 (Ace_cif.Parser.input_length input);
      check "empty fails like empty string" true
        (match Ace_cif.Parser.parse_input input with
        | _ -> false
        | exception Ace_cif.Parser.Error _ -> true));
  (* missing file: Sys_error, same contract as open_in_bin *)
  check "missing file raises Sys_error" true
    (match Ace_cif.Parser.open_file "no/such/file.cif" with
    | _ -> false
    | exception Sys_error _ -> true)

let () =
  Alcotest.run "cif"
    [
      ( "parser",
        [
          Alcotest.test_case "box" `Quick test_parse_box;
          Alcotest.test_case "box direction" `Quick test_parse_box_direction;
          Alcotest.test_case "polygon wire flash" `Quick test_parse_polygon_wire_flash;
          Alcotest.test_case "separators and comments" `Quick test_parse_separators;
          Alcotest.test_case "symbols and calls" `Quick test_parse_symbols;
          Alcotest.test_case "DS scale" `Quick test_parse_scale;
          Alcotest.test_case "transform chain" `Quick test_parse_transform_chain;
          Alcotest.test_case "labels" `Quick test_parse_label;
          Alcotest.test_case "user extension" `Quick test_parse_user_extension;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error description" `Quick test_describe_error;
        ] );
      ( "writer",
        [
          prop_roundtrip;
          Alcotest.test_case "labels round-trip" `Quick test_roundtrip_labels;
        ] );
      ( "design",
        [
          Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "bbox and counts" `Quick test_bbox_and_counts;
          Alcotest.test_case "labels transformed" `Quick test_labels_transformed;
        ] );
      ( "stream",
        [
          prop_stream_matches_flatten;
          prop_stream_sorted;
          Alcotest.test_case "lazy expansion" `Quick test_stream_lazy_expansion;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counts" `Quick test_stats;
          Alcotest.test_case "empty design" `Quick test_stats_empty;
        ] );
      ( "corpus",
        [ Alcotest.test_case "sample files" `Quick test_sample_corpus ] );
      ( "mmap",
        [
          Alcotest.test_case "corpus equivalence" `Quick test_mmap_corpus;
          Alcotest.test_case "broken.cif: errors + no fd leak" `Quick
            test_mmap_broken_no_leak;
          Alcotest.test_case "empty and missing files" `Quick
            test_mmap_edge_files;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "DD command" `Quick test_dd_command;
          Alcotest.test_case "comments everywhere" `Quick test_comment_everywhere;
          Alcotest.test_case "bare call" `Quick test_call_without_transform;
          Alcotest.test_case "negative coordinates" `Quick test_negative_everything;
        ] );
    ]
