(* The domain-parallel sharded extractor (Ace_core.Parallel) and the
   streaming/determinism fixes underneath it: FIFO heap pops, the lazy
   window clip, boundary recording, and -jN ≡ -j1 equivalence. *)
open Ace_geom
open Ace_tech
module Parallel = Ace_core.Parallel
module Engine = Ace_core.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let design_of ast = Ace_cif.Design.of_ast ast
let flat design = Ace_core.Extractor.extract design

let equiv a b =
  Ace_netlist.Compare.equivalent ~with_sizes:true ~with_names:true a b

let data_design file =
  let dir =
    (* cwd differs between `dune runtest` and `dune exec` *)
    List.find Sys.file_exists [ "../data"; "data"; "_build/default/data" ]
  in
  design_of (Ace_cif.Parser.parse_file (Filename.concat dir file))

(* ------------------------------------------------------------------ *)
(* Strip partition                                                     *)
(* ------------------------------------------------------------------ *)

let strips_tile (bb : Box.t) wins =
  Array.length wins >= 1
  && Array.for_all
       (fun (w : Box.t) -> w.b = bb.b && w.t = bb.t && w.l < w.r)
       wins
  && wins.(0).Box.l = bb.l
  && wins.(Array.length wins - 1).Box.r = bb.r
  && Array.for_all
       (fun i -> wins.(i).Box.r = wins.(i + 1).Box.l)
       (Array.init (Array.length wins - 1) Fun.id)

let test_windows_tile () =
  let bb = Box.make ~l:(-7) ~b:3 ~r:100 ~t:50 in
  List.iter
    (fun jobs ->
      let wins = Parallel.windows ~jobs bb in
      check "tiles" true (strips_tile bb wins);
      check "at most jobs" true (Array.length wins <= jobs))
    [ 1; 2; 3; 4; 7; 16 ]

let test_windows_narrow () =
  (* a 3-wide chip cannot support 4 strips: one strip per x unit, max *)
  let bb = Box.make ~l:0 ~b:0 ~r:3 ~t:9 in
  let wins = Parallel.windows ~jobs:4 bb in
  check_int "three strips" 3 (Array.length wins);
  check "tiles" true (strips_tile bb wins)

let prop_windows =
  Tutil.qtest ~count:200 "windows tile any box"
    QCheck2.Gen.(
      let* l = int_range (-50) 50 in
      let* b = int_range (-50) 50 in
      let* w = int_range 1 120 in
      let* h = int_range 1 120 in
      let* jobs = int_range 1 9 in
      return (Box.make ~l ~b ~r:(l + w) ~t:(b + h), jobs))
    (fun (bb, jobs) ->
      let wins = Parallel.windows ~jobs bb in
      strips_tile bb wins && Array.length wins <= jobs)

(* ------------------------------------------------------------------ *)
(* 2-D tile grids                                                      *)
(* ------------------------------------------------------------------ *)

let grid_tiles (bb : Box.t) grid =
  let cols = Array.length grid in
  cols >= 1
  && Array.for_all (fun col -> Array.length col = Array.length grid.(0)) grid
  && (* columns adjacent, spanning [bb.l, bb.r) *)
  grid.(0).(0).Box.l = bb.l
  && grid.(cols - 1).(0).Box.r = bb.r
  && Array.for_all
       (fun i -> grid.(i).(0).Box.r = grid.(i + 1).(0).Box.l)
       (Array.init (cols - 1) Fun.id)
  && Array.for_all
       (fun col ->
         let rows = Array.length col in
         (* rows adjacent bottom to top, spanning [bb.b, bb.t) *)
         col.(0).Box.b = bb.b
         && col.(rows - 1).Box.t = bb.t
         && Array.for_all
              (fun j -> col.(j).Box.t = col.(j + 1).Box.b)
              (Array.init (rows - 1) Fun.id)
         && (* every tile shares its column's x-range and is non-empty *)
         Array.for_all
           (fun (w : Box.t) ->
             w.l = col.(0).Box.l && w.r = col.(0).Box.r && w.l < w.r
             && w.b < w.t)
           col)
       grid

let test_tile_windows () =
  let bb = Box.make ~l:(-7) ~b:3 ~r:100 ~t:50 in
  List.iter
    (fun (cols, rows) ->
      let grid = Parallel.tile_windows ~cols ~rows bb in
      check "tiles the box" true (grid_tiles bb grid);
      check "at most cols" true (Array.length grid <= cols);
      check "at most rows" true (Array.length grid.(0) <= rows))
    [ (1, 1); (2, 2); (3, 4); (7, 5); (16, 16) ];
  (* a 3x2 chip clamps a 5x5 request to one tile per unit *)
  let tiny = Box.make ~l:0 ~b:0 ~r:3 ~t:2 in
  let grid = Parallel.tile_windows ~cols:5 ~rows:5 tiny in
  check_int "clamped cols" 3 (Array.length grid);
  check_int "clamped rows" 2 (Array.length grid.(0));
  check "clamped grid tiles" true (grid_tiles tiny grid);
  (* strips are the 1-row special case of the grid *)
  let strips = Parallel.windows ~jobs:4 bb in
  let grid = Parallel.tile_windows ~cols:4 ~rows:1 bb in
  check "windows = 1-row grid" true
    (Array.to_list strips = Array.to_list (Array.map (fun c -> c.(0)) grid))

let prop_tile_windows =
  Tutil.qtest ~count:200 "tile grids tile any box"
    QCheck2.Gen.(
      let* l = int_range (-50) 50 in
      let* b = int_range (-50) 50 in
      let* w = int_range 1 120 in
      let* h = int_range 1 120 in
      let* cols = int_range 1 9 in
      let* rows = int_range 1 9 in
      return (Box.make ~l ~b ~r:(l + w) ~t:(b + h), cols, rows))
    (fun (bb, cols, rows) ->
      let grid = Parallel.tile_windows ~cols ~rows bb in
      grid_tiles bb grid
      && Array.length grid <= cols
      && Array.length grid.(0) <= rows)

let test_tile_of_string () =
  check "4x2 parses" true (Parallel.tile_of_string "4x2" = Ok (4, 2));
  check "1x1 parses" true (Parallel.tile_of_string "1x1" = Ok (1, 1));
  List.iter
    (fun s ->
      check
        (Printf.sprintf "%S rejected" s)
        true
        (Result.is_error (Parallel.tile_of_string s)))
    [ ""; "4"; "x"; "4x"; "x2"; "0x2"; "4x0"; "-1x2"; "4x2x1"; "a xb" ]

(* ------------------------------------------------------------------ *)
(* Stream regressions: exhaustion guard, FIFO ties, window filter       *)
(* ------------------------------------------------------------------ *)

let bar lyr ~l ~b ~r ~t = Tutil.element_of_box lyr (Box.make ~l ~b ~r ~t)

let test_stream_exhausted () =
  let d =
    design_of
      {
        Ace_cif.Ast.symbols = [];
        top_level = [ bar Layer.Metal ~l:0 ~b:0 ~r:4 ~t:4 ];
      }
  in
  let s = Ace_cif.Stream.create d in
  ignore (Ace_cif.Stream.drain s);
  (* the old heap popped a dummy item and drove its size to -1 here;
     now exhaustion is a stable fixed point *)
  check_int "pending zero" 0 (Ace_cif.Stream.pending s);
  check "peek none" true (Ace_cif.Stream.peek_top s = None);
  check "pop_at empty" true (Ace_cif.Stream.pop_at s 0 = []);
  check "peek still none" true (Ace_cif.Stream.peek_top s = None);
  check_int "pending never negative" 0 (Ace_cif.Stream.pending s)

let test_stream_fifo_ties () =
  (* three boxes sharing a top edge, written in scrambled x order: pops
     must come back in insertion order, not x order or heap-shape order *)
  let d =
    design_of
      {
        Ace_cif.Ast.symbols = [];
        top_level =
          [
            bar Layer.Metal ~l:20 ~b:0 ~r:24 ~t:10;
            bar Layer.Metal ~l:0 ~b:0 ~r:4 ~t:10;
            bar Layer.Metal ~l:40 ~b:0 ~r:44 ~t:10;
          ];
      }
  in
  let s = Ace_cif.Stream.create d in
  check "top is 10" true (Ace_cif.Stream.peek_top s = Some 10);
  let xs =
    List.map (fun (_, (b : Box.t)) -> b.l) (Ace_cif.Stream.pop_at s 10)
  in
  check "insertion order" true (xs = [ 20; 0; 40 ])

let test_stream_window_filter () =
  (* one symbol placed inside and far outside the window: the outside
     instance must never be expanded, its geometry never streamed *)
  let sym =
    {
      Ace_cif.Ast.id = 1;
      name = None;
      elements = [ bar Layer.Metal ~l:0 ~b:0 ~r:4 ~t:4 ];
    }
  in
  let call dx =
    Ace_cif.Ast.Call { symbol = 1; ops = [ Ace_cif.Ast.Translate (dx, 0) ] }
  in
  let d =
    design_of { Ace_cif.Ast.symbols = [ sym ]; top_level = [ call 0; call 1000 ] }
  in
  let s =
    Ace_cif.Stream.create ~window:(Box.make ~l:0 ~b:0 ~r:10 ~t:10) d
  in
  let boxes = Ace_cif.Stream.drain s in
  check_int "only the inside box" 1 (List.length boxes);
  check_int "one expansion" 1 (Ace_cif.Stream.expansions s)

(* ------------------------------------------------------------------ *)
(* Engine window mode: lazy clip boundedness, boundary faces            *)
(* ------------------------------------------------------------------ *)

let test_clip_is_lazy () =
  (* boxes below the window bottom must never be pulled from the source —
     the old implementation drained the entire stream up front *)
  let w = Box.make ~l:0 ~b:20 ~r:100 ~t:120 in
  let box ?b t = (Layer.Metal, Box.make ~l:0 ~b:(Option.value b ~default:(t - 4)) ~r:10 ~t) in
  let popped = ref [] in
  (* 150 straddles the window top (pools), 100 and 50 are inside, 10 is
     entirely below the bottom *)
  let base = Engine.source_of_boxes [ box ~b:100 150; box 100; box 50; box 10 ] in
  let counted =
    {
      Engine.peek = base.Engine.peek;
      pop =
        (fun y ->
          let bs = base.Engine.pop y in
          List.iter (fun (_, (b : Box.t)) -> popped := b.t :: !popped) bs;
          bs);
    }
  in
  let src = Engine.source_clipped counted ~window:w in
  (* the 150-top box pools into a single stop at the window top *)
  check "first stop at window top" true (src.Engine.peek () = Some w.Box.t);
  let rec drain acc =
    match src.Engine.peek () with
    | None -> List.rev acc
    | Some y -> drain (List.rev_append (src.Engine.pop y) acc)
  in
  let boxes = drain [] in
  check "all inside window" true
    (List.for_all
       (fun (_, (b : Box.t)) -> b.l >= w.l && b.r <= w.r && b.b >= w.b && b.t <= w.t)
       boxes);
  check_int "three boxes survive the clip" 3 (List.length boxes);
  check "below-bottom box never popped" true
    (List.for_all (fun t -> t >= w.Box.b) !popped)

let faces_of ~layer (raw : Engine.raw) =
  List.filter_map
    (fun (s : Engine.boundary_span) ->
      if Layer.equal s.blayer layer then Some s.bface else None)
    raw.Engine.boundary_nets
  |> List.sort_uniq compare

let run_windowed w boxes =
  Engine.run
    { Engine.emit_geometry = false; window = Some w }
    (Engine.source_of_boxes boxes)
    ~labels:[]

let test_boundary_all_faces () =
  let w = Box.make ~l:0 ~b:0 ~r:10 ~t:10 in
  let raw =
    run_windowed w [ (Layer.Metal, Box.make ~l:(-2) ~b:(-2) ~r:12 ~t:12) ]
  in
  check "all four faces" true
    (faces_of ~layer:Layer.Metal raw
    = [ Engine.West; Engine.East; Engine.South; Engine.North ])

let test_boundary_south_only () =
  let w = Box.make ~l:0 ~b:0 ~r:10 ~t:10 in
  let raw =
    run_windowed w [ (Layer.Metal, Box.make ~l:2 ~b:(-5) ~r:4 ~t:5) ]
  in
  check "south only" true (faces_of ~layer:Layer.Metal raw = [ Engine.South ])

let test_boundary_contact_faces () =
  let w = Box.make ~l:0 ~b:0 ~r:10 ~t:10 in
  (* a contact needs a conductor under it to be recorded at all *)
  let with_metal cut =
    [ (Layer.Metal, Box.make ~l:(-2) ~b:(-5) ~r:12 ~t:5); (Layer.Contact, cut) ]
  in
  (* cut reaching both vertical faces: recorded West and East *)
  let raw = run_windowed w (with_metal (Box.make ~l:(-2) ~b:2 ~r:12 ~t:4)) in
  check "contact on vertical faces" true
    (faces_of ~layer:Layer.Contact raw = [ Engine.West; Engine.East ]);
  (* cut crossing the bottom face only: the cut layer bridges within a
     strip, never across strips, so no South/North contact spans *)
  let raw = run_windowed w (with_metal (Box.make ~l:2 ~b:(-5) ~r:4 ~t:4)) in
  check "no horizontal contact spans" true
    (faces_of ~layer:Layer.Contact raw = []);
  (* ...while the metal under it still records South *)
  check "metal south recorded" true
    (List.mem Engine.South (faces_of ~layer:Layer.Metal raw))

(* ------------------------------------------------------------------ *)
(* Shard-stitch equivalence and determinism                             *)
(* ------------------------------------------------------------------ *)

let test_mesh_cif_equivalence () =
  let design = data_design "mesh4x4.cif" in
  let reference = flat design in
  List.iter
    (fun jobs ->
      check
        (Printf.sprintf "-j%d equals flat" jobs)
        true
        (equiv reference (Parallel.extract ~jobs design)))
    [ 2; 3; 4 ]

let test_workload_equivalence () =
  List.iter
    (fun (name, ast) ->
      let design = design_of ast in
      check name true (equiv (flat design) (Parallel.extract ~jobs:4 design)))
    [
      ("inverter", Ace_workloads.Chips.single_inverter ());
      ("chain8", Ace_workloads.Chips.inverter_chain ~n:8 ());
      ("four inverters", Ace_workloads.Chips.four_inverters ());
      ("mesh4x4", Ace_workloads.Arrays.mesh ~rows:4 ~cols:4 ());
      ("datapath", Ace_workloads.Chips.datapath ~bits:4 ~stages:3 ());
      ("random logic", Ace_workloads.Chips.random_logic ~cells:16 ~seed:7 ());
    ]

let test_deterministic_and_sequential () =
  let design = data_design "mesh4x4.cif" in
  let wl jobs =
    Ace_netlist.Wirelist.to_string (Parallel.extract ~jobs design)
  in
  check "repeat runs byte-identical" true (wl 4 = wl 4);
  check "sequential mode byte-identical" true
    (wl 4
    = Ace_netlist.Wirelist.to_string
        (Parallel.extract ~sequential:true ~jobs:4 design))

(* The canonicalization pass makes tiled output *byte-identical* to the
   flat extractor — not just electrically equivalent — for any grid and
   any worker count (and therefore any steal schedule: workers only
   decide who computes a tile, never what lands in its result slot). *)
let test_tiled_byte_identity () =
  List.iter
    (fun file ->
      let design = data_design file in
      let flat_wl = Ace_netlist.Wirelist.to_string (flat design) in
      List.iter
        (fun (cols, rows) ->
          List.iter
            (fun jobs ->
              let wl =
                Ace_netlist.Wirelist.to_string
                  (Parallel.extract ~jobs ~tile:(cols, rows) design)
              in
              check
                (Printf.sprintf "%s %dx%d -j%d = flat" file cols rows jobs)
                true
                (wl = flat_wl))
            [ 1; 4 ])
        [ (1, 2); (2, 2); (3, 2); (4, 4); (1, 7) ])
    [ "inverter.cif"; "chain4.cif"; "mesh4x4.cif"; "shapes.cif" ]

(* A transistor channel cut by a *horizontal* seam: vertical diffusion
   crossed by vertical poly makes a channel spanning y 6..14; a 1x2 grid
   over the 0..20 chip puts its seam at y 10, through the channel.  The
   two partial halves must knit across the seam and the result must be
   byte-identical to the flat run. *)
let test_horizontal_seam_device () =
  let d =
    design_of
      {
        Ace_cif.Ast.symbols = [];
        top_level =
          [
            bar Layer.Diffusion ~l:4 ~b:0 ~r:8 ~t:20;
            bar Layer.Poly ~l:2 ~b:6 ~r:10 ~t:14;
          ];
      }
  in
  let flat_c = flat d in
  check_int "one transistor" 1 (Array.length flat_c.Ace_netlist.Circuit.devices);
  let tiled, st = Parallel.extract_with_stats ~tile:(1, 2) d in
  check "tiled = flat bytes" true
    (Ace_netlist.Wirelist.to_string tiled
    = Ace_netlist.Wirelist.to_string flat_c);
  check_int "two tiles" 2 (List.length st.Parallel.shards);
  (* the channel really was cut: both tiles held a partial device *)
  List.iter
    (fun (s : Parallel.shard) -> check_int "partial in tile" 1 s.s_partials)
    st.Parallel.shards

let prop_tiled_byte_identity =
  Tutil.qtest ~count:60 "tiled ≡ flat bytes on random designs and grids"
    QCheck2.Gen.(
      let* ast = Tutil.gen_design in
      let* cols = int_range 1 4 in
      let* rows = int_range 1 4 in
      let* jobs = int_range 1 4 in
      return (ast, cols, rows, jobs))
    (fun (ast, cols, rows, jobs) ->
      let design = design_of ast in
      Ace_netlist.Wirelist.to_string
        (Parallel.extract ~jobs ~tile:(cols, rows) design)
      = Ace_netlist.Wirelist.to_string (flat design))

let test_stats () =
  let design = data_design "mesh4x4.cif" in
  let _, st = Parallel.extract_with_stats ~jobs:4 design in
  let bb = Option.get (Ace_cif.Design.bbox design) in
  check_int "four shards" 4 (List.length st.Parallel.shards);
  check_int "jobs recorded" 4 st.Parallel.jobs;
  check_int "global box count" (Ace_cif.Design.count_boxes design)
    st.Parallel.boxes;
  check "stops counted" true (st.Parallel.stops > 0);
  check "balance sane" true (Parallel.balance st >= 1.0);
  check "stitch time non-negative" true (st.Parallel.stitch_seconds >= 0.0);
  List.iter
    (fun (s : Parallel.shard) ->
      check "full-height strip" true
        (s.s_window.Box.b = bb.Box.b && s.s_window.Box.t = bb.Box.t))
    st.Parallel.shards;
  (* the flat fallback is the flat extractor *)
  let _, st1 = Parallel.extract_with_stats ~jobs:1 design in
  check_int "flat fallback: no shards" 0 (List.length st1.Parallel.shards);
  check "flat fallback: no stitch" true (st1.Parallel.stitch_seconds = 0.0);
  (* an explicit grid engages the tiled path even at -j1, capping the
     worker count at the tile count *)
  let _, st22 = Parallel.extract_with_stats ~jobs:1 ~tile:(2, 2) design in
  check_int "2x2 grid: four tiles" 4 (List.length st22.Parallel.shards);
  check_int "2x2 grid at -j1: one worker" 1 st22.Parallel.jobs;
  check "2x2 tiles are not full height" true
    (List.exists
       (fun (s : Parallel.shard) ->
         s.s_window.Box.b <> bb.Box.b || s.s_window.Box.t <> bb.Box.t)
       st22.Parallel.shards);
  let _, st8 = Parallel.extract_with_stats ~jobs:8 ~tile:(2, 2) design in
  check_int "workers capped at tiles" 4 st8.Parallel.jobs;
  (* a 1x1 grid falls back to the flat extractor *)
  let _, st11 = Parallel.extract_with_stats ~jobs:4 ~tile:(1, 1) design in
  check_int "1x1 grid: flat fallback" 0 (List.length st11.Parallel.shards)

(* A shard that raises (via the on_shard hook, including on a spawned
   domain) must neither wedge the join nor leak domains: the exception
   propagates with every sibling joined, the lowest-indexed raiser wins,
   and the very next extraction on the same process succeeds. *)
let test_shard_raise_joins () =
  let design = data_design "mesh4x4.cif" in
  let reference = flat design in
  let raised =
    match
      Parallel.extract ~jobs:4
        ~on_shard:(fun idx -> if idx > 0 then failwith "boom")
        design
    with
    | _ -> None
    | exception Failure m -> Some m
  in
  check "raising shard propagates" true (raised = Some "boom");
  (* deadline trips on shards propagate as Cancelled, also after joining *)
  let cancel = Ace_core.Cancel.create () in
  Ace_core.Cancel.cancel ~reason:"test-stop" cancel;
  let cancelled =
    match Parallel.extract ~jobs:4 ~cancel design with
    | _ -> false
    | exception Ace_core.Cancel.Cancelled r -> r = "test-stop"
  in
  check "cancelled shards propagate the reason" true cancelled;
  (* the process is left consistent: a fresh parallel run still matches *)
  check "extraction works after a raising shard" true
    (equiv reference (Parallel.extract ~jobs:4 design))

let prop_random_designs =
  Tutil.qtest ~count:60 "parallel ≡ flat on random hierarchical designs"
    Tutil.gen_design (fun ast ->
      let design = design_of ast in
      equiv (flat design) (Parallel.extract ~jobs:3 design))

let () =
  Alcotest.run "parallel"
    [
      ( "windows",
        [
          Alcotest.test_case "tile" `Quick test_windows_tile;
          Alcotest.test_case "narrow chip" `Quick test_windows_narrow;
          prop_windows;
          Alcotest.test_case "2-D grid" `Quick test_tile_windows;
          prop_tile_windows;
          Alcotest.test_case "tile_of_string" `Quick test_tile_of_string;
        ] );
      ( "stream",
        [
          Alcotest.test_case "exhaustion" `Quick test_stream_exhausted;
          Alcotest.test_case "FIFO ties" `Quick test_stream_fifo_ties;
          Alcotest.test_case "window filter" `Quick test_stream_window_filter;
        ] );
      ( "engine-window",
        [
          Alcotest.test_case "clip is lazy" `Quick test_clip_is_lazy;
          Alcotest.test_case "all faces" `Quick test_boundary_all_faces;
          Alcotest.test_case "south only" `Quick test_boundary_south_only;
          Alcotest.test_case "contact faces" `Quick test_boundary_contact_faces;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "mesh4x4.cif" `Quick test_mesh_cif_equivalence;
          Alcotest.test_case "workloads" `Quick test_workload_equivalence;
          Alcotest.test_case "determinism" `Quick
            test_deterministic_and_sequential;
          Alcotest.test_case "tiled byte identity" `Quick
            test_tiled_byte_identity;
          Alcotest.test_case "horizontal seam device" `Quick
            test_horizontal_seam_device;
          prop_tiled_byte_identity;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "raising shard joins" `Quick
            test_shard_raise_joins;
          prop_random_designs;
        ] );
    ]
