open Ace_geom

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Box                                                                  *)
(* ------------------------------------------------------------------ *)

let test_box_basics () =
  let b = Box.make ~l:0 ~b:1 ~r:4 ~t:5 in
  check_int "width" 4 (Box.width b);
  check_int "height" 4 (Box.height b);
  check_int "area" 16 (Box.area b);
  check "contains corner" true (Box.contains_point b (Point.make 0 1));
  check "excludes top-right" false (Box.contains_point b (Point.make 4 5))

let test_box_degenerate () =
  Alcotest.check_raises "zero width" (Invalid_argument "Box.make: degenerate box l=1 b=0 r=1 t=2")
    (fun () -> ignore (Box.make ~l:1 ~b:0 ~r:1 ~t:2))

let test_box_overlap_vs_touch () =
  let a = Box.make ~l:0 ~b:0 ~r:4 ~t:4 in
  let edge = Box.make ~l:4 ~b:0 ~r:8 ~t:4 in
  let corner = Box.make ~l:4 ~b:4 ~r:8 ~t:8 in
  let inside = Box.make ~l:1 ~b:1 ~r:3 ~t:3 in
  check "edge abutment does not overlap" false (Box.overlaps a edge);
  check "edge abutment touches" true (Box.touches a edge);
  check "corner contact does not touch" false (Box.touches a corner);
  check "containment overlaps" true (Box.overlaps a inside)

let test_box_intersection () =
  let a = Box.make ~l:0 ~b:0 ~r:10 ~t:10 in
  let b = Box.make ~l:5 ~b:5 ~r:15 ~t:15 in
  (match Box.intersection a b with
  | Some i ->
      check_int "ix l" 5 i.Box.l;
      check_int "ix area" 25 (Box.area i)
  | None -> Alcotest.fail "expected intersection");
  check "disjoint" true
    (Box.intersection a (Box.make ~l:20 ~b:20 ~r:25 ~t:25) = None);
  check "edge contact has no area" true
    (Box.intersection a (Box.make ~l:10 ~b:0 ~r:12 ~t:4) = None)

let test_box_hull_clip () =
  let a = Box.make ~l:0 ~b:0 ~r:2 ~t:2 and b = Box.make ~l:5 ~b:7 ~r:6 ~t:9 in
  let h = Box.hull a b in
  check_int "hull r" 6 h.Box.r;
  check_int "hull t" 9 h.Box.t;
  check "hull_list empty" true (Box.hull_list [] = None);
  match Box.clip (Box.make ~l:(-5) ~b:(-5) ~r:1 ~t:1) ~window:a with
  | Some c -> check_int "clip area" 1 (Box.area c)
  | None -> Alcotest.fail "clip dropped overlapping box"

(* ------------------------------------------------------------------ *)
(* Interval                                                             *)
(* ------------------------------------------------------------------ *)

let spans = Alcotest.(list (pair int int))

let test_interval_normalize () =
  Alcotest.check spans "merge overlapping and abutting"
    [ (0, 7); (9, 12) ]
    (Interval.to_spans (Interval.of_spans [ (3, 5); (0, 3); (4, 7); (9, 12) ]));
  Alcotest.check spans "drop empties" []
    (Interval.to_spans (Interval.of_spans [ (3, 3); (5, 4) ]))

let test_interval_ops () =
  let a = Interval.of_spans [ (0, 10); (20, 30) ] in
  let b = Interval.of_spans [ (5, 25) ] in
  Alcotest.check spans "union" [ (0, 30) ] (Interval.to_spans (Interval.union a b));
  Alcotest.check spans "inter" [ (5, 10); (20, 25) ]
    (Interval.to_spans (Interval.inter a b));
  Alcotest.check spans "diff" [ (0, 5); (25, 30) ]
    (Interval.to_spans (Interval.diff a b));
  check_int "overlap_length" 10 (Interval.overlap_length a b);
  check_int "total" 20 (Interval.total_length a)

let test_interval_mem () =
  let a = Interval.of_spans [ (0, 4); (8, 10) ] in
  check "mem 0" true (Interval.mem a 0);
  check "mem 3" true (Interval.mem a 3);
  check "mem 4 (half-open)" false (Interval.mem a 4);
  check "mem 9" true (Interval.mem a 9)

let test_overlapping_pairs () =
  let a = Interval.of_spans [ (0, 4); (6, 10) ] in
  let b = Interval.of_spans [ (3, 7); (9, 12) ] in
  Alcotest.(check (list (pair int int)))
    "pairs"
    [ (0, 0); (1, 0); (1, 1) ]
    (Interval.overlapping_pairs a b)

let gen_spans =
  QCheck2.Gen.(
    list_size (int_range 0 12)
      (let* lo = int_range (-30) 30 in
       let* len = int_range 0 10 in
       return (lo, lo + len)))

let prop_interval_model =
  (* compare set operations against a naive membership model *)
  Tutil.qtest "interval ops agree with membership model"
    QCheck2.Gen.(pair gen_spans gen_spans)
    (fun (sa, sb) ->
      let a = Interval.of_spans sa and b = Interval.of_spans sb in
      let mem_raw spans x = List.exists (fun (lo, hi) -> lo <= x && x < hi) spans in
      let ok = ref true in
      for x = -35 to 45 do
        let ma = mem_raw sa x and mb = mem_raw sb x in
        if Interval.mem (Interval.union a b) x <> (ma || mb) then ok := false;
        if Interval.mem (Interval.inter a b) x <> (ma && mb) then ok := false;
        if Interval.mem (Interval.diff a b) x <> (ma && not mb) then ok := false
      done;
      !ok)

let prop_interval_canonical =
  Tutil.qtest "of_spans yields sorted disjoint non-abutting spans" gen_spans
    (fun raw ->
      let t = Interval.of_spans raw in
      let rec ok = function
        | (a : Interval.span) :: (b : Interval.span) :: rest ->
            a.lo < a.hi && a.hi < b.lo && ok (b :: rest)
        | [ (a : Interval.span) ] -> a.lo < a.hi
        | [] -> true
      in
      ok t)

let prop_interval_algebra =
  Tutil.qtest "union/inter algebra laws"
    QCheck2.Gen.(triple gen_spans gen_spans gen_spans)
    (fun (sa, sb, sc) ->
      let a = Interval.of_spans sa
      and b = Interval.of_spans sb
      and c = Interval.of_spans sc in
      Interval.equal (Interval.union a b) (Interval.union b a)
      && Interval.equal (Interval.inter a b) (Interval.inter b a)
      && Interval.equal
           (Interval.union a (Interval.union b c))
           (Interval.union (Interval.union a b) c)
      && Interval.equal (Interval.union a a) a
      && Interval.equal (Interval.inter a a) a
      && Interval.equal (Interval.diff a a) Interval.empty
      && Interval.equal (Interval.diff a Interval.empty) a
      && Interval.equal (Interval.inter a Interval.empty) Interval.empty)

let prop_overlap_length =
  Tutil.qtest "overlap_length equals length of intersection"
    QCheck2.Gen.(pair gen_spans gen_spans)
    (fun (sa, sb) ->
      let a = Interval.of_spans sa and b = Interval.of_spans sb in
      Interval.overlap_length a b = Interval.total_length (Interval.inter a b))

(* ------------------------------------------------------------------ *)
(* Ivec: flat arena interval vectors vs the list reference              *)
(* ------------------------------------------------------------------ *)

(* The engine's per-strip devices algebra runs on flat arena vectors
   (Ivec); these properties pin every arena operation to the list-based
   Interval reference on random span sets.  gen_spans freely generates
   empty, adjacent and coalescing spans, so the edge cases (zero-length
   input, abutting spans merged by of_spans, multi-way coalescing) are
   all exercised. *)

(* the list-based assignment walk the engine used before the arena port,
   kept here verbatim as the executable specification *)
let list_assign prev cur ~fresh ~union =
  let rec drop (c : Interval.span) = function
    | ((ps : Interval.span), _) :: tl when ps.hi <= c.lo -> drop c tl
    | l -> l
  in
  let rec collect (c : Interval.span) l acc =
    match l with
    | ((ps : Interval.span), pe) :: tl when ps.lo < c.hi ->
        collect c tl (pe :: acc)
    | _ -> List.rev acc
  in
  let rec go prev cur acc =
    match cur with
    | [] -> List.rev acc
    | c :: cs ->
        let prev = drop c prev in
        let id =
          match collect c prev [] with
          | [] -> fresh c
          | first :: rest ->
              List.iter (fun e -> union first e) rest;
              first
        in
        go prev cs ((c, id) :: acc)
  in
  go prev cur []

let list_iter_tagged_overlaps a b ~f =
  let rec go a b =
    match (a, b) with
    | [], _ | _, [] -> ()
    | ((sa : Interval.span), ia) :: atl, ((sb : Interval.span), ib) :: btl ->
        let len = Interval.span_overlap_length sa sb in
        if len > 0 then f ia ib len (max sa.lo sb.lo);
        if sa.hi < sb.hi then go atl b else go a btl
  in
  go a b

let prop_ivec_inter_diff =
  Tutil.qtest ~count:500 "ivec inter/diff/overlap agree with Interval"
    QCheck2.Gen.(pair gen_spans gen_spans)
    (fun (sa, sb) ->
      let a = Interval.of_spans sa and b = Interval.of_spans sb in
      let va = Ivec.of_list a and vb = Ivec.of_list b in
      let dst = Ivec.create ~cap:1 () in
      Ivec.inter_into ~dst va vb;
      let inter_ok = Interval.equal (Ivec.to_list dst) (Interval.inter a b) in
      Ivec.diff_into ~dst va vb;
      let diff_ok = Interval.equal (Ivec.to_list dst) (Interval.diff a b) in
      (* destinations are recycled across strips: a second write into the
         same scratch must not be polluted by the first *)
      Ivec.inter_into ~dst va vb;
      let reuse_ok = Interval.equal (Ivec.to_list dst) (Interval.inter a b) in
      inter_ok && diff_ok && reuse_ok
      && Ivec.overlap_length va vb = Interval.overlap_length a b
      && Ivec.total_length va = Interval.total_length a
      && Interval.equal (Ivec.to_list va) a)

let prop_ivec_assign =
  Tutil.qtest ~count:500 "ivec assign matches the list reference"
    QCheck2.Gen.(pair gen_spans gen_spans)
    (fun (sp, sc) ->
      let prev_spans = Interval.of_spans sp
      and cur = Interval.of_spans sc in
      (* the same fresh/union *sequence* must be observed, not just the
         same tagging: the engine's net numbering and union order ride on
         it *)
      let prev = List.mapi (fun i s -> (s, 100 + i)) prev_spans in
      let ev_ref = ref [] and next_ref = ref 0 in
      let out_ref =
        list_assign prev cur
          ~fresh:(fun (s : Interval.span) ->
            ev_ref := `Fresh (s.lo, s.hi) :: !ev_ref;
            let id = !next_ref in
            incr next_ref;
            id)
          ~union:(fun a b -> ev_ref := `Union (a, b) :: !ev_ref)
      in
      let ev_vec = ref [] and next_vec = ref 0 in
      let dst = Ivec.tagged_create ~cap:1 () in
      Ivec.assign
        ~prev:(Ivec.tagged_of_list prev)
        ~cur:(Ivec.of_list cur) ~dst
        ~fresh:(fun lo hi ->
          ev_vec := `Fresh (lo, hi) :: !ev_vec;
          let id = !next_vec in
          incr next_vec;
          id)
        ~union:(fun a b -> ev_vec := `Union (a, b) :: !ev_vec);
      out_ref = Ivec.tagged_to_list dst && !ev_ref = !ev_vec)

let prop_ivec_tagged_overlaps =
  Tutil.qtest ~count:500 "ivec tagged-overlap walk matches the list walk"
    QCheck2.Gen.(pair gen_spans gen_spans)
    (fun (sa, sb) ->
      let a = List.mapi (fun i s -> (s, i)) (Interval.of_spans sa)
      and b = List.mapi (fun i s -> (s, 50 + i)) (Interval.of_spans sb) in
      let visits_ref = ref [] in
      list_iter_tagged_overlaps a b ~f:(fun ia ib len lo ->
          visits_ref := (ia, ib, len, lo) :: !visits_ref);
      let visits_vec = ref [] in
      Ivec.iter_tagged_overlaps (Ivec.tagged_of_list a) (Ivec.tagged_of_list b)
        ~f:(fun ia ib len lo -> visits_vec := (ia, ib, len, lo) :: !visits_vec);
      !visits_ref = !visits_vec)

(* ------------------------------------------------------------------ *)
(* Transform                                                            *)
(* ------------------------------------------------------------------ *)

let gen_transform =
  QCheck2.Gen.(
    let prim =
      oneof
        [
          return Transform.mirror_x;
          return Transform.mirror_y;
          return (Transform.rotation ~a:0 ~b:1);
          return (Transform.rotation ~a:(-1) ~b:0);
          return (Transform.rotation ~a:0 ~b:(-1));
          (let* dx = int_range (-20) 20 in
           let* dy = int_range (-20) 20 in
           return (Transform.translation ~dx ~dy));
        ]
    in
    let* ops = list_size (int_range 0 5) prim in
    return (List.fold_left Transform.then_ Transform.identity ops))

let gen_point =
  QCheck2.Gen.(
    let* x = int_range (-30) 30 in
    let* y = int_range (-30) 30 in
    return (Point.make x y))

let prop_transform_inverse =
  Tutil.qtest "inverse composes to identity"
    QCheck2.Gen.(pair gen_transform gen_point)
    (fun (t, p) ->
      Point.equal p (Transform.apply (Transform.inverse t) (Transform.apply t p)))

let prop_transform_compose =
  Tutil.qtest "compose applies inner first"
    QCheck2.Gen.(triple gen_transform gen_transform gen_point)
    (fun (o, i, p) ->
      Point.equal
        (Transform.apply (Transform.compose o i) p)
        (Transform.apply o (Transform.apply i p)))

let prop_transform_box =
  Tutil.qtest "box transform preserves area"
    QCheck2.Gen.(pair gen_transform (Tutil.gen_box ()))
    (fun (t, bx) -> Box.area (Transform.apply_box t bx) = Box.area bx)

let test_rotation_cases () =
  let r90 = Transform.rotation ~a:0 ~b:1 in
  check "r90 maps +x to +y" true
    (Point.equal (Transform.apply r90 (Point.make 1 0)) (Point.make 0 1));
  Alcotest.check_raises "diagonal rotation rejected"
    (Invalid_argument "Transform.rotation: non-manhattan direction (1,1)")
    (fun () -> ignore (Transform.rotation ~a:1 ~b:1))

(* ------------------------------------------------------------------ *)
(* Poly                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rect_polygon () =
  let poly =
    [ Point.make 0 0; Point.make 10 0; Point.make 10 6; Point.make 0 6 ]
  in
  let boxes = Poly.boxes_of_polygon ~quantum:2 poly in
  check_int "one box" 1 (List.length boxes);
  check_int "area" 60 (Poly.total_area boxes)

let test_l_shape () =
  (* an L: 10x10 minus the 6x6 upper-right corner *)
  let poly =
    [
      Point.make 0 0; Point.make 10 0; Point.make 10 4; Point.make 4 4;
      Point.make 4 10; Point.make 0 10;
    ]
  in
  let boxes = Poly.boxes_of_polygon ~quantum:2 poly in
  check_int "area" 64 (Poly.total_area boxes);
  check "coalesced into two boxes" true (List.length boxes = 2)

let test_degenerate_polygon () =
  check "too few points" true (Poly.boxes_of_polygon ~quantum:2 [ Point.make 0 0 ] = []);
  check "zero area" true
    (Poly.boxes_of_polygon ~quantum:2
       [ Point.make 0 0; Point.make 5 0; Point.make 9 0 ]
    = [])

let test_triangle_approx () =
  let poly = [ Point.make 0 0; Point.make 16 0; Point.make 0 16 ] in
  let boxes = Poly.boxes_of_polygon ~quantum:2 poly in
  let area = Poly.total_area boxes in
  (* half of 256 = 128; the strip approximation must stay close *)
  check "triangle area within 15%" true (abs (area - 128) < 20);
  check "boxes stay inside hull" true
    (List.for_all
       (fun (b : Box.t) -> b.l >= 0 && b.b >= 0 && b.r <= 16 && b.t <= 16)
       boxes)

let test_wire () =
  let path = [ Point.make 0 0; Point.make 10 0; Point.make 10 8 ] in
  let boxes = Poly.boxes_of_wire ~quantum:2 ~width:2 path in
  check_int "two segments" 2 (List.length boxes);
  (* CIF wires extend half a width beyond endpoints *)
  let hull = Option.get (Box.hull_list boxes) in
  check_int "hull l" (-1) hull.Box.l;
  check_int "hull t" 9 hull.Box.t

let test_wire_single_point () =
  let boxes = Poly.boxes_of_wire ~quantum:1 ~width:4 [ Point.make 5 5 ] in
  check_int "square" 1 (List.length boxes);
  check_int "area" 16 (Poly.total_area boxes)

let test_round_flash () =
  let boxes =
    Poly.boxes_of_round_flash ~quantum:2 ~diameter:12 ~center:(Point.make 0 0)
  in
  let area = Poly.total_area boxes in
  (* inscribed approximation: below the disc area (~113), above half *)
  check "flash area plausible" true (area > 60 && area <= 120);
  check "flash inside bounding square" true
    (List.for_all
       (fun (b : Box.t) -> b.l >= -6 && b.r <= 6 && b.b >= -6 && b.t <= 6)
       boxes)

let prop_manhattan_area =
  (* histogram skylines (rectilinear simple polygons) decompose exactly *)
  Tutil.qtest "manhattan polygon decomposition preserves area"
    QCheck2.Gen.(
      let* bars =
        list_size (int_range 1 6) (pair (int_range 1 5) (int_range 1 8))
      in
      return bars)
    (fun bars ->
      (* skyline over bars of (width, height), strictly above the baseline *)
      let rim, _ =
        List.fold_left
          (fun (pts, x) (w, h) ->
            (Point.make (x + w) h :: Point.make x h :: pts, x + w))
          ([], 0) bars
      in
      let total_w = List.fold_left (fun a (w, _) -> a + w) 0 bars in
      let poly = Point.make 0 0 :: List.rev (Point.make total_w 0 :: rim) in
      let expected = List.fold_left (fun a (w, h) -> a + (w * h)) 0 bars in
      let boxes = Poly.boxes_of_polygon ~quantum:1 poly in
      Poly.total_area boxes = expected)

let prop_coalesce_preserves_area =
  Tutil.qtest "coalesce_columns preserves area"
    QCheck2.Gen.(list_size (int_range 0 10) (Tutil.gen_box ()))
    (fun boxes ->
      (* stack disjoint copies: shift each box to its own y band *)
      let disjoint =
        List.mapi
          (fun i (b : Box.t) ->
            Box.make ~l:b.l ~b:(b.b + (i * 100)) ~r:b.r ~t:(b.t + (i * 100)))
          boxes
      in
      Poly.total_area (Poly.coalesce_columns disjoint) = Poly.total_area disjoint)

let () =
  Alcotest.run "geom"
    [
      ( "box",
        [
          Alcotest.test_case "basics" `Quick test_box_basics;
          Alcotest.test_case "degenerate" `Quick test_box_degenerate;
          Alcotest.test_case "overlap vs touch" `Quick test_box_overlap_vs_touch;
          Alcotest.test_case "intersection" `Quick test_box_intersection;
          Alcotest.test_case "hull and clip" `Quick test_box_hull_clip;
        ] );
      ( "interval",
        [
          Alcotest.test_case "normalize" `Quick test_interval_normalize;
          Alcotest.test_case "set ops" `Quick test_interval_ops;
          Alcotest.test_case "mem" `Quick test_interval_mem;
          Alcotest.test_case "overlapping pairs" `Quick test_overlapping_pairs;
          prop_interval_model;
          prop_interval_canonical;
          prop_interval_algebra;
          prop_overlap_length;
        ] );
      ( "ivec",
        [
          prop_ivec_inter_diff;
          prop_ivec_assign;
          prop_ivec_tagged_overlaps;
        ] );
      ( "transform",
        [
          Alcotest.test_case "rotation cases" `Quick test_rotation_cases;
          prop_transform_inverse;
          prop_transform_compose;
          prop_transform_box;
        ] );
      ( "poly",
        [
          Alcotest.test_case "rectangle" `Quick test_rect_polygon;
          Alcotest.test_case "L shape" `Quick test_l_shape;
          Alcotest.test_case "degenerate" `Quick test_degenerate_polygon;
          Alcotest.test_case "triangle approximation" `Quick test_triangle_approx;
          Alcotest.test_case "wire" `Quick test_wire;
          Alcotest.test_case "wire single point" `Quick test_wire_single_point;
          Alcotest.test_case "round flash" `Quick test_round_flash;
          prop_manhattan_area;
          prop_coalesce_preserves_area;
        ] );
    ]
