(* lint_examples — golden-file regression over the lint engine.

   Runs the default rule battery over every .cif file given on the command
   line (parsed leniently, then extracted) and over a fixed set of
   workloads-generated chips, and prints one deterministic line per input:

     name: devices=N nets=N code=count code=count ...

   The committed lint_examples.expected pins these counts; any rule change
   that shifts a count on a real layout shows up as a runtest diff. *)

module Lint = Ace_lint

let lint_line name circuit =
  let findings = Lint.Engine.run circuit in
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (f : Lint.Finding.t) ->
      Hashtbl.replace tally f.code
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally f.code)))
    findings;
  let counts =
    Hashtbl.fold (fun code n acc -> (code, n) :: acc) tally []
    |> List.sort compare
    |> List.map (fun (code, n) -> Printf.sprintf "%s=%d" code n)
  in
  Printf.printf "%s: devices=%d nets=%d%s\n" name
    (Ace_netlist.Circuit.device_count circuit)
    (Ace_netlist.Circuit.net_count circuit)
    (match counts with [] -> " clean" | _ -> " " ^ String.concat " " counts)

let of_cif path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let ast, _ = Ace_cif.Parser.parse_string_lenient text in
  let design, _ = Ace_cif.Design.of_ast_lenient ast in
  let name = Filename.basename path in
  lint_line name (Ace_core.Extractor.extract ~name design)

let of_workload name file =
  lint_line name (Ace_core.Extractor.extract ~name (Ace_cif.Design.of_ast file))

let () =
  Array.iteri (fun i p -> if i > 0 then of_cif p) Sys.argv;
  of_workload "single_inverter" (Ace_workloads.Chips.single_inverter ());
  of_workload "inverter_chain_8" (Ace_workloads.Chips.inverter_chain ~n:8 ());
  of_workload "four_inverters" (Ace_workloads.Chips.four_inverters ());
  of_workload "ram_4x4" (Ace_workloads.Chips.ram_array ~rows:4 ~cols:4 ());
  of_workload "datapath_4x3" (Ace_workloads.Chips.datapath ~bits:4 ~stages:3 ());
  of_workload "random_logic_12"
    (Ace_workloads.Chips.random_logic ~cells:12 ~seed:7 ())
