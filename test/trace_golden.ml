(* trace_golden — helper for the Chrome-trace golden and regression rules.

   Default mode: parse a CIF file, extract it with -j 4 under a recording
   session, and print the *zeroed* Chrome trace-event JSON (wall times,
   pids and allocation figures zeroed; counter values real) so the output
   is byte-stable and can be diffed against a committed golden.  The
   extraction runs the tiled path in sequential mode: the tile/stitch
   code and every per-tile counter are identical to the scheduled run,
   but the steal count (which depends on domain start-up timing) is
   deterministically zero.

   `--validate FILE.json` mode: structurally validate an exported trace
   (valid JSON, traceEvents present, per-track monotone timestamps,
   balanced B/E pairs) — used by the broken.cif --trace regression to
   check what the CLI wrote through its at_exit hook. *)

module Trace = Ace_trace.Trace
module Chrome = Ace_trace.Chrome

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let validate path =
  match Chrome.validate (read_file path) with
  | Ok events ->
      Printf.printf "%s: valid, %d events\n" (Filename.basename path) events;
      exit 0
  | Error m ->
      Printf.eprintf "%s: INVALID trace: %s\n" path m;
      exit 1

let golden path =
  Trace.start ();
  let design =
    Ace_cif.Design.of_ast (Ace_cif.Parser.parse_file path)
  in
  ignore
    (Ace_core.Parallel.extract ~sequential:true ~jobs:4
       ~name:(Filename.basename path) design);
  let session = Trace.stop () in
  print_string (Chrome.render ~zero:true session)

let () =
  match Sys.argv with
  | [| _; "--validate"; path |] -> validate path
  | [| _; path |] -> golden path
  | _ ->
      prerr_endline "usage: trace_golden (--validate FILE.json | FILE.cif)";
      exit 2
