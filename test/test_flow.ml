(* Tests for Ace_flow: the generic fixpoint solver, the reachability
   analyses, the ternary switch-level abstract interpretation, and the
   hierarchical (leaf-summary) analysis. *)
open Ace_netlist
open Ace_flow

module Sim = Ace_analysis.Sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let extract_workload file =
  Ace_core.Extractor.extract ~emit_geometry:true
    (Ace_cif.Design.of_ast file)

let inverter () = extract_workload (Ace_workloads.Chips.single_inverter ())

let net names =
  { Circuit.names; location = Ace_geom.Point.origin; geometry = [] }

let dev dtype gate source drain =
  {
    Circuit.dtype;
    gate;
    source;
    drain;
    length = 2;
    width = 2;
    location = Ace_geom.Point.origin;
    geometry = [];
  }

let enh = dev Ace_tech.Nmos.Enhancement
let dep g s d = { (dev Ace_tech.Nmos.Depletion g s d) with length = 8 }

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)
(* ------------------------------------------------------------------ *)

module Max = struct
  type t = int

  let bottom = min_int
  let join = max
  let equal = Int.equal
  let widen = max
end

module S = Solver.Make (Max)

let test_solver_chain () =
  (* x0 = 5; x_i = x_{i-1}: an acyclic chain solves in one sweep *)
  let system =
    {
      S.size = 4;
      deps = (fun i -> if i = 0 then [] else [ i - 1 ]);
      transfer = (fun env i -> if i = 0 then 5 else env (i - 1));
    }
  in
  let values, stats = S.solve system in
  Array.iter (fun v -> check_int "chain value" 5 v) values;
  check_int "four singleton components" 4 stats.Solver.sccs;
  check_int "max component" 1 stats.Solver.max_scc;
  check "converged" true stats.Solver.converged;
  check_int "no widenings" 0 stats.Solver.widenings

let test_solver_cycle () =
  (* x0 = join(1, x1); x1 = x0: one two-node component, fixpoint 1 *)
  let system =
    {
      S.size = 2;
      deps = (fun i -> [ 1 - i ]);
      transfer = (fun env i -> if i = 0 then max 1 (env 1) else env 0);
    }
  in
  let values, stats = S.solve system in
  check_int "x0" 1 values.(0);
  check_int "x1" 1 values.(1);
  check_int "one component" 1 stats.Solver.sccs;
  check_int "component size" 2 stats.Solver.max_scc;
  check "converged" true stats.Solver.converged

let test_solver_backstop () =
  (* x0 = x0 + 1 on (int, max) has no fixpoint; the bounded-iteration
     backstop must report non-convergence instead of spinning *)
  let system =
    {
      S.size = 1;
      deps = (fun _ -> [ 0 ]);
      transfer = (fun env _ -> env 0 + 1);
    }
  in
  let _, stats = S.solve ~widen_after:4 system in
  check "did not converge" false stats.Solver.converged;
  check "widenings counted" true (stats.Solver.widenings > 0)

let test_solver_empty () =
  let system =
    { S.size = 0; deps = (fun _ -> []); transfer = (fun _ _ -> 0) }
  in
  let values, stats = S.solve system in
  check_int "no values" 0 (Array.length values);
  check "converged" true stats.Solver.converged

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)
(* ------------------------------------------------------------------ *)

let test_reachable_inverter () =
  let c = inverter () in
  let v = Option.get (Circuit.find_rail c "VDD") in
  let g = Option.get (Circuit.find_rail c "GND") in
  let out = Circuit.find_net c "OUT" in
  let inp = Circuit.find_net c "INP" in
  let r = Reach.reachable c [ v ] in
  check "vdd reaches out" true r.(out);
  check "vdd reaches gnd through channels" true r.(g);
  check "gate-only input not channel-reachable" false r.(inp);
  (* a stop net is marked but blocks propagation *)
  let r = Reach.reachable ~stop:[ out ] c [ v ] in
  check "stop net itself reached" true r.(out);
  check "propagation blocked at stop" false r.(g)

let test_distances_inverter () =
  let c = inverter () in
  let v = Option.get (Circuit.find_rail c "VDD") in
  let g = Option.get (Circuit.find_rail c "GND") in
  let out = Circuit.find_net c "OUT" in
  let inp = Circuit.find_net c "INP" in
  let d = Reach.distances c ~seeds:[ v ] ~use_device:(fun _ _ -> true) in
  check_int "seed at zero" 0 d.(v);
  check_int "out one hop" 1 d.(out);
  check_int "gnd two hops" 2 d.(g);
  check "input unreachable" true (d.(inp) = max_int)

(* ------------------------------------------------------------------ *)
(* Ternary abstract interpretation                                     *)
(* ------------------------------------------------------------------ *)

let rails c =
  ( Option.get (Circuit.find_rail c "VDD"),
    Option.get (Circuit.find_rail c "GND") )

let test_ternary_clean_inverter () =
  let c = inverter () in
  let v, g = rails c in
  let verdict = Ternary.analyze c ~vdd:v ~gnd:g in
  let out = Circuit.find_net c "OUT" in
  check "out may be high" true (Ternary.may1 verdict.Ternary.values.(out));
  check "out may be low" true (Ternary.may0 verdict.Ternary.values.(out));
  check "no contention" true (verdict.Ternary.contention = []);
  check "no bridges" true (verdict.Ternary.bridges = []);
  check "no dead logic" true (verdict.Ternary.dead = []);
  check "no floating nets" true (verdict.Ternary.float_nets = []);
  check "no charge sharing" true (verdict.Ternary.share = []);
  check "no x" true (verdict.Ternary.x_nets = []);
  check "converged" true verdict.Ternary.stats.Solver.converged

let test_ternary_contention_and_bridge () =
  (* both enhancement devices conduct when IN is high: OUT is fought
     over, and a third device is a direct VDD-GND bridge *)
  let c =
    {
      Circuit.name = "fight";
      nets = [| net [ "VDD" ]; net [ "IN" ]; net [ "OUT" ]; net [ "GND" ] |];
      devices = [| enh 1 0 2; enh 1 2 3; enh 1 0 3 |];
    }
  in
  let verdict = Ternary.analyze c ~vdd:0 ~gnd:3 in
  check "contention on OUT" true (List.mem 2 verdict.Ternary.contention);
  check "bridge device flagged" true (List.mem 2 verdict.Ternary.bridges)

let test_ternary_dead_gate () =
  (* N is held at weak-1 by a self-gated depletion load and gates the
     pull-down: it can never go low *)
  let c =
    {
      Circuit.name = "dead";
      nets = [| net [ "VDD" ]; net [ "N" ]; net [ "GND" ]; net [ "OUT" ] |];
      devices = [| dep 1 0 1; enh 1 3 2 |];
    }
  in
  let verdict = Ternary.analyze c ~vdd:0 ~gnd:2 in
  check "N never low" true
    (List.mem (1, Ternary.Never_low) verdict.Ternary.dead)

let test_ternary_floating () =
  (* pass transistor into a stub: S stores charge when G is off *)
  let c =
    {
      Circuit.name = "pass";
      nets =
        [| net [ "VDD" ]; net [ "GND" ]; net [ "G" ]; net [ "IN" ]; net [ "S" ] |];
      devices = [| enh 2 3 4 |];
    }
  in
  let inputs = [| false; false; true; true; false |] in
  let verdict = Ternary.analyze ~inputs c ~vdd:0 ~gnd:1 in
  check "S floats" true (List.mem 4 verdict.Ternary.float_nets);
  check "S not always driven" true verdict.Ternary.floating.(4)

let test_ternary_charge_sharing () =
  (* two charge-storage nets joined by a pass gate *)
  let c =
    {
      Circuit.name = "share";
      nets =
        [|
          net [ "VDD" ]; net [ "GND" ]; net [ "G" ]; net [ "IN" ];
          net [ "A" ]; net [ "B" ];
        |];
      devices = [| enh 2 3 4; enh 2 4 5 |];
    }
  in
  let inputs = [| false; false; true; true; false; false |] in
  let verdict = Ternary.analyze ~inputs c ~vdd:0 ~gnd:1 in
  check "pass gate shares charge" true (List.mem 1 verdict.Ternary.share)

let test_ternary_x_trace () =
  (* F floats and gates d1, injecting X into S (itself floating); the
     X flows through the G-gated pass d2 into the driven net OUT.  The
     trace from OUT must walk back to the floating source S. *)
  let c =
    {
      Circuit.name = "xsrc";
      nets =
        [|
          net [ "VDD" ]; net [ "GND" ]; net [ "G" ]; net [];
          net [ "S" ]; net [ "OUT" ];
        |];
      devices = [| enh 3 1 4; enh 2 4 5; dep 5 0 5 |];
    }
  in
  let inputs = [| false; false; true; false; false; false |] in
  let verdict = Ternary.analyze ~inputs c ~vdd:0 ~gnd:1 in
  check "OUT can carry X" true (List.mem 5 verdict.Ternary.x_nets);
  check "OUT itself is driven" false verdict.Ternary.floating.(5);
  (match Ternary.x_trace verdict c 5 with
  | [ 4; 5 ] -> ()
  | chain ->
      Alcotest.failf "unexpected trace [%s]"
        (String.concat "; " (List.map string_of_int chain)));
  (* a floating net is its own source *)
  check "floating net traces to itself" true
    (Ternary.x_trace verdict c 4 = [ 4 ])

let test_ternary_total_on_shared_rail () =
  (* vdd = gnd must not raise and must not report rail contention *)
  let c = inverter () in
  let v, _ = rails c in
  let verdict = Ternary.analyze c ~vdd:v ~gnd:v in
  check "shared rail tolerated" true
    (Array.length verdict.Ternary.values = Circuit.net_count c)

let test_ternary_corpus_converges () =
  (* the flow analysis must converge on every extractable data/ chip *)
  let dir =
    List.find Sys.file_exists [ "../data"; "data"; "_build/default/data" ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         Filename.check_suffix f ".cif"
         && not (String.starts_with ~prefix:"broken" f))
  |> List.iter (fun f ->
         let c =
           Ace_core.Extractor.extract
             (Ace_cif.Design.of_ast
                (Ace_cif.Parser.parse_file (Filename.concat dir f)))
         in
         let vdd = Circuit.find_rail c "VDD" in
         let gnd = Circuit.find_rail c "GND" in
         let v, g =
           match (vdd, gnd) with
           | Some v, Some g when v <> g -> (v, g)
           | _ ->
               (* no rails (array workloads): force two nets so the
                  solver still runs end to end *)
               (0, min 1 (max 0 (Circuit.net_count c - 1)))
         in
         if Circuit.net_count c > 0 then begin
           let verdict = Ternary.analyze c ~vdd:v ~gnd:g in
           check (f ^ " converges") true verdict.Ternary.stats.Solver.converged
         end)

(* ------------------------------------------------------------------ *)
(* Soundness against the concrete simulator                            *)
(* ------------------------------------------------------------------ *)

(* Random circuits with rails at nets 0/1 and up to three named inputs
   that only gate devices (so both the simulator and the abstraction
   agree on what a primary input is). *)
let gen_railed_circuit =
  let open QCheck2.Gen in
  let* n_nets = int_range 5 8 in
  let n_inputs = 2 in
  let* n_devs = int_range 1 8 in
  let chan_min = 2 + n_inputs in
  let* devices =
    list_size (return n_devs)
      (let* dtype =
         frequency
           [
             (3, return Ace_tech.Nmos.Enhancement);
             (1, return Ace_tech.Nmos.Depletion);
           ]
       in
       let* gate = int_range 2 (n_nets - 1) in
       let* source = oneof [ return 0; return 1; int_range chan_min (n_nets - 1) ] in
       let* drain = int_range chan_min (n_nets - 1) in
       return
         {
           Circuit.dtype;
           gate;
           source;
           drain;
           length = (if dtype = Ace_tech.Nmos.Depletion then 8 else 2);
           width = 2;
           location = Ace_geom.Point.origin;
           geometry = [];
         })
  in
  let nets =
    Array.init n_nets (fun i ->
        net
          (if i = 0 then [ "VDD" ]
           else if i = 1 then [ "GND" ]
           else if i < chan_min then [ Printf.sprintf "IN%d" (i - 2) ]
           else []))
  in
  return { Circuit.name = "random"; devices = Array.of_list devices; nets }

let assignments k =
  (* all 2^k boolean vectors *)
  let rec go k = if k = 0 then [ [] ] else
      let rest = go (k - 1) in
      List.map (fun a -> false :: a) rest @ List.map (fun a -> true :: a) rest
  in
  go k

let flow_sound_vs_sim c =
  let verdict = Ternary.analyze c ~vdd:0 ~gnd:1 in
  let input_nets =
    List.filter (fun i -> verdict.Ternary.inputs.(i))
      (List.init (Circuit.net_count c) Fun.id)
  in
  let input_names =
    List.map (fun i -> List.hd c.Circuit.nets.(i).Circuit.names) input_nets
  in
  List.for_all
    (fun bits ->
      let sim = Sim.create c ~vdd:"VDD" ~gnd:"GND" in
      List.iter2
        (fun name b ->
          Sim.set_input sim name
            (if b then Ace_analysis.Sim.High else Ace_analysis.Sim.Low))
        input_names bits;
      if not (Sim.stabilize sim) then true (* oscillation: out of scope *)
      else
        List.for_all
          (fun n ->
            let v = verdict.Ternary.values.(n) in
            let covered may =
              may v || Ternary.mayx v || v land Ternary.float_bit <> 0
            in
            match Sim.value_of_net sim n with
            | Ace_analysis.Sim.High ->
                (* a concrete 1 must be abstractly possible, and
                   falsifies any Never_high claim *)
                covered Ternary.may1
                && not (List.mem (n, Ternary.Never_high) verdict.Ternary.dead)
            | Ace_analysis.Sim.Low ->
                covered Ternary.may0
                && not (List.mem (n, Ternary.Never_low) verdict.Ternary.dead)
            | Ace_analysis.Sim.Unknown -> true)
          (List.init (Circuit.net_count c) Fun.id))
    (assignments (List.length input_nets))

let qcheck_soundness =
  Tutil.qtest ~count:200 "flow sound vs exhaustive sim" gen_railed_circuit
    flow_sound_vs_sim

(* ------------------------------------------------------------------ *)
(* Hierarchical summaries                                              *)
(* ------------------------------------------------------------------ *)

let verdicts_agree (a : Ternary.verdict) (b : Ternary.verdict) =
  a.Ternary.values = b.Ternary.values
  && a.Ternary.inflows = b.Ternary.inflows
  && a.Ternary.floating = b.Ternary.floating
  && a.Ternary.contention = b.Ternary.contention
  && a.Ternary.bridges = b.Ternary.bridges
  && a.Ternary.dead = b.Ternary.dead
  && a.Ternary.float_nets = b.Ternary.float_nets
  && a.Ternary.share = b.Ternary.share
  && a.Ternary.x_devices = b.Ternary.x_devices
  && a.Ternary.x_nets = b.Ternary.x_nets

(* A hand-built hierarchy: one inverter leaf cell instantiated n times
   in a chain, rails shared.  Locals: 0=VDD 1=GND 2=IN 3=OUT, plus an
   internal node 4 (series pull-down through an always-on transistor)
   so each activation has state of its own to summarise. *)
let inverter_chain_hier n =
  let hdev dtype gate source drain length =
    {
      Hier.dtype;
      gate;
      source;
      drain;
      length;
      width = 2;
      location = Ace_geom.Point.origin;
    }
  in
  let leaf =
    {
      Hier.part_name = "inv";
      net_count = 5;
      exports = [ 0; 1; 2; 3 ];
      net_names = [];
      devices =
        [
          hdev Ace_tech.Nmos.Depletion 3 0 3 8;
          hdev Ace_tech.Nmos.Enhancement 2 3 4 2;
          hdev Ace_tech.Nmos.Enhancement 0 4 1 2;
        ];
      instances = [];
    }
  in
  let top =
    {
      Hier.part_name = "chain";
      net_count = n + 3;
      exports = [];
      net_names = [ (0, "VDD"); (1, "GND"); (2, "A") ];
      devices = [];
      instances =
        List.init n (fun k ->
            {
              Hier.part_name = "inv";
              inst_name = Printf.sprintf "i%d" k;
              offset = Ace_geom.Point.origin;
              net_map = [ (0, 0); (1, 1); (2, 2 + k); (3, 3 + k) ];
            });
    }
  in
  { Hier.parts = [ leaf; top ]; top = "chain" }

let test_summary_matches_flat () =
  let h = inverter_chain_hier 6 in
  check "hierarchy valid" true (Hier.validate h = []);
  let circuit, verdict, stats = Summary.analyze h in
  match verdict with
  | None -> Alcotest.fail "expected a verdict (rails present)"
  | Some hier_verdict ->
      let v, g = rails circuit in
      let flat_verdict = Ternary.analyze circuit ~vdd:v ~gnd:g in
      check "identical findings flat vs hier" true
        (verdicts_agree hier_verdict flat_verdict);
      check_int "six instances summarised" 6 stats.Summary.instances;
      check "cache hits on repeated cells" true (stats.Summary.hits > 0)

let test_summary_hext_chain () =
  (* the same identity through the real hierarchical extractor *)
  let design =
    Ace_cif.Design.of_ast (Ace_workloads.Chips.inverter_chain ~n:8 ())
  in
  let h, _ = Ace_hext.Hext.extract design in
  let circuit, verdict, _ = Summary.analyze h in
  match verdict with
  | None -> Alcotest.fail "expected a verdict (rails present)"
  | Some hier_verdict ->
      let v, g = rails circuit in
      let flat_verdict = Ternary.analyze circuit ~vdd:v ~gnd:g in
      check "identical findings flat vs hier" true
        (verdicts_agree hier_verdict flat_verdict)

let test_summary_no_rails () =
  (* array workloads carry no rails: the summariser reports None
     instead of raising *)
  let design =
    Ace_cif.Design.of_ast (Ace_workloads.Arrays.mesh ~rows:2 ~cols:2 ())
  in
  let h, _ = Ace_hext.Hext.extract design in
  let _, verdict, stats = Summary.analyze h in
  check "no verdict without rails" true (verdict = None);
  check_int "no leaf solves" 0 stats.Summary.misses

let () =
  Alcotest.run "flow"
    [
      ( "solver",
        [
          Alcotest.test_case "acyclic chain" `Quick test_solver_chain;
          Alcotest.test_case "cycle" `Quick test_solver_cycle;
          Alcotest.test_case "backstop" `Quick test_solver_backstop;
          Alcotest.test_case "empty system" `Quick test_solver_empty;
        ] );
      ( "reach",
        [
          Alcotest.test_case "reachable" `Quick test_reachable_inverter;
          Alcotest.test_case "distances" `Quick test_distances_inverter;
        ] );
      ( "ternary",
        [
          Alcotest.test_case "clean inverter" `Quick test_ternary_clean_inverter;
          Alcotest.test_case "contention and bridge" `Quick
            test_ternary_contention_and_bridge;
          Alcotest.test_case "dead gate" `Quick test_ternary_dead_gate;
          Alcotest.test_case "floating" `Quick test_ternary_floating;
          Alcotest.test_case "charge sharing" `Quick test_ternary_charge_sharing;
          Alcotest.test_case "x trace" `Quick test_ternary_x_trace;
          Alcotest.test_case "shared rail total" `Quick
            test_ternary_total_on_shared_rail;
          Alcotest.test_case "corpus converges" `Quick
            test_ternary_corpus_converges;
        ] );
      ("soundness", [ qcheck_soundness ]);
      ( "summary",
        [
          Alcotest.test_case "matches flat" `Quick test_summary_matches_flat;
          Alcotest.test_case "hext chain" `Quick test_summary_hext_chain;
          Alcotest.test_case "no rails" `Quick test_summary_no_rails;
        ] );
    ]
