(* test_serve — the fault-injection harness for the aced daemon.

   Drives the real aced binary (path in the ACED environment variable,
   falling back to the in-tree build path) as a subprocess, over both
   --once pipes and a Unix-domain socket, and asserts the robustness
   contracts end to end:

   - protocol totality: garbage in, exactly one well-formed JSON error
     reply per line out;
   - warm-equals-cold: a cache hit's result field is byte-identical to
     the cold computation (and to an in-process -j1 extraction);
   - deadline expiry cancels a large extraction and the daemon stays
     healthy;
   - injected torn writes and bit flips are quarantined and healed;
   - a raising shard domain becomes an internal-error reply, not a
     wedged or dead daemon;
   - SIGKILL + restart: stale temp files are swept and the persisted
     cache serves byte-identical warm results;
   - sustained overload yields structured overloaded rejections;
   - oversized request lines are drained and rejected without ballooning
     memory, and the connection stays usable.

   The crash-safe cache and the fault-spec parser also get direct
   in-process unit coverage (eviction order needs planted mtimes). *)

module Json = Ace_trace.Json
module Serve = Ace_serve
module Chips = Ace_workloads.Chips

let aced_exe =
  match Sys.getenv_opt "ACED" with
  | Some p -> p
  | None ->
      List.find Sys.file_exists
        [ "../bin/aced.exe"; "_build/default/bin/aced.exe" ]

let failures = ref 0

let check name ok =
  if ok then Printf.printf "PASS %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n%!" name
  end

let check_s name got expected =
  if got = expected then Printf.printf "PASS %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL %s\n  expected: %s\n  got:      %s\n%!" name
      (String.sub expected 0 (min 200 (String.length expected)))
      (String.sub got 0 (min 200 (String.length got)))
  end

(* ------------------------------------------------------------------ *)
(* Scratch space                                                      *)

let scratch_base =
  let d = Printf.sprintf "/tmp/aced-test-%d" (Unix.getpid ()) in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let scratch_n = ref 0

let scratch () =
  incr scratch_n;
  let d = Printf.sprintf "%s/t%d" scratch_base !scratch_n in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                       *)

let jparse line =
  match Json.parse line with
  | Ok j -> j
  | Error m -> failwith (Printf.sprintf "unparseable reply %S: %s" line m)

let jget j k =
  match Json.member k j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "reply missing field %S" k)

let jstr = function Json.Str s -> s | _ -> failwith "expected string"
let jbool = function Json.Bool b -> b | _ -> failwith "expected bool"
let jnum = function Json.Num f -> int_of_float f | _ -> failwith "expected num"
let err_code j = jstr (jget (jget j "error") "code")

(* The raw result fragment of an ok extract reply, for byte-identity
   checks that bypass any JSON re-rendering. *)
let result_fragment reply =
  let marker = "\"result\":" in
  let stop_marker = ",\"diags\":" in
  let find sub from =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length reply then raise Not_found
      else if String.sub reply i n = sub then i
      else go (i + 1)
    in
    go from
  in
  let i = find marker 0 + String.length marker in
  let j = find stop_marker i in
  String.sub reply i (j - i)

(* ------------------------------------------------------------------ *)
(* Subprocess plumbing                                                *)

let devnull () = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0

let start_daemon args =
  let null = devnull () in
  let pid =
    Unix.create_process aced_exe
      (Array.of_list (aced_exe :: args))
      null Unix.stdout Unix.stderr
  in
  Unix.close null;
  pid

let connect path =
  let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect s (Unix.ADDR_UNIX path);
    (Unix.in_channel_of_descr s, Unix.out_channel_of_descr s, s)
  with e ->
    (try Unix.close s with Unix.Unix_error _ -> ());
    raise e

let close_conn (_, _, fd) = try Unix.close fd with Unix.Unix_error _ -> ()

let wait_for_socket path =
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    if Unix.gettimeofday () > deadline then
      failwith ("daemon did not come up on " ^ path)
    else
      match connect path with
      | conn ->
          close_conn conn
      | exception _ ->
          Unix.sleepf 0.02;
          go ()
  in
  go ()

let start_socket_daemon args sock =
  let pid = start_daemon (("--socket" :: sock :: args)) in
  wait_for_socket sock;
  pid

let rpc (ic, oc, _) line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let reap ?(timeout = 20.0) pid =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid)
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _ -> ()
  in
  go ()

let shutdown_daemon pid sock =
  (match connect sock with
  | conn ->
      (try ignore (rpc conn {|{"op":"shutdown"}|}) with _ -> ());
      close_conn conn
  | exception _ -> ());
  reap pid

(* Run `aced --once` (plus extra args) over a list of request lines and
   return the reply lines.  Input is written first, then the pipe is
   closed: replies are only produced per complete line, so no deadlock
   as long as one batch fits the pipe buffers (ours do). *)
let run_once ?(args = []) lines =
  (* cloexec: the child must NOT inherit our pipe ends (beyond the dup2'd
     stdio), or it never sees EOF on its stdin *)
  let r_in, w_in = Unix.pipe ~cloexec:true () in
  let r_out, w_out = Unix.pipe ~cloexec:true () in
  let null = devnull () in
  let pid =
    Unix.create_process aced_exe
      (Array.of_list ((aced_exe :: "--once" :: args)))
      r_in w_out Unix.stderr
  in
  Unix.close null;
  Unix.close r_in;
  Unix.close w_out;
  let oc = Unix.out_channel_of_descr w_in in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let ic = Unix.in_channel_of_descr r_out in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let replies = read [] in
  close_in_noerr ic;
  reap pid;
  replies

(* ------------------------------------------------------------------ *)
(* Fixtures                                                           *)

let data_file name =
  let dir =
    List.find Sys.file_exists [ "../data"; "data"; "_build/default/data" ]
  in
  let ic = open_in_bin (Filename.concat dir name) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let inverter_cif = data_file "inverter.cif"

let chain_cif n =
  Ace_cif.Writer.to_string (Chips.inverter_chain ~n ())

let ram_cif side =
  Ace_cif.Writer.to_string (Chips.ram_array ~rows:side ~cols:side ())

let extract_req ?(id = 1) ?jobs ?tile ?deadline_ms ?(cache = true) cif =
  let fields =
    [
      ("id", Serve.Proto.int id);
      ("op", Serve.Proto.str "extract");
      ("cif", Serve.Proto.str cif);
    ]
    @ (match jobs with Some j -> [ ("jobs", Serve.Proto.int j) ] | None -> [])
    @ (match tile with Some t -> [ ("tile", Serve.Proto.str t) ] | None -> [])
    @ (match deadline_ms with
      | Some ms -> [ ("deadline_ms", Serve.Proto.int ms) ]
      | None -> [])
    @ if cache then [] else [ ("cache", "false") ]
  in
  Serve.Proto.obj fields

(* The -j1 one-shot reference the daemon's replies must match. *)
let reference_wirelist cif =
  let ast, _ = Ace_cif.Parser.parse_string_lenient cif in
  let design, _ = Ace_cif.Design.of_ast_lenient ast in
  Ace_netlist.Wirelist.to_string
    (Ace_core.Parallel.extract ~jobs:1 ~name:"chip" design)

(* ------------------------------------------------------------------ *)
(* 1. --once basics: ping, typed errors, totality                     *)

let test_once_basics () =
  let replies =
    run_once
      [
        {|{"id":1,"op":"ping"}|};
        {|{"id":2,"op":"nonsense"}|};
        {|not json at all|};
        {|{"id":3,"op":"extract"}|};
        {|{"id":4,"op":"extract","cif":42}|};
        "";
      ]
  in
  check "once: one reply per line" (List.length replies = 6);
  let r = List.map jparse replies in
  check "once: ping pongs"
    (jbool (jget (List.nth r 0) "pong") && jbool (jget (List.nth r 0) "ok"));
  check "once: unknown op -> bad-request"
    (err_code (List.nth r 1) = "bad-request");
  check "once: garbage -> bad-request"
    (err_code (List.nth r 2) = "bad-request");
  check "once: missing cif -> bad-request"
    (err_code (List.nth r 3) = "bad-request");
  check "once: non-string cif -> bad-request"
    (err_code (List.nth r 4) = "bad-request");
  check "once: empty line -> bad-request"
    (err_code (List.nth r 5) = "bad-request")

(* ------------------------------------------------------------------ *)
(* 2. --once protocol garbage batch (subprocess fuzz smoke)           *)

let test_once_garbage () =
  let rng = Random.State.make [| 0xD0E5 |] in
  let valid = extract_req inverter_cif in
  let garbage () =
    match Random.State.int rng 3 with
    | 0 ->
        (* truncated valid request: never complete JSON *)
        String.sub valid 0 (1 + Random.State.int rng (String.length valid - 2))
    | 1 ->
        String.init
          (1 + Random.State.int rng 60)
          (fun _ ->
            (* printable noise, newline-free *)
            Char.chr (32 + Random.State.int rng 95))
    | _ ->
        String.concat ""
          [ "{\"op\":"; String.make (Random.State.int rng 5) '['; "}" ]
  in
  let lines = List.init 120 (fun _ -> garbage ()) in
  let replies = run_once lines in
  check "garbage: one reply per line" (List.length replies = List.length lines);
  let all_wellformed =
    List.for_all
      (fun l ->
        match Json.parse l with
        | Ok j -> not (jbool (jget j "ok"))
        | Error _ -> false)
      replies
  in
  check "garbage: every reply is well-formed JSON with ok:false"
    all_wellformed

(* ------------------------------------------------------------------ *)
(* 3. Socket extract: cold, warm, byte-identity vs one-shot           *)

let test_socket_extract () =
  let dir = scratch () in
  let sock = Filename.concat dir "s.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let pid = start_socket_daemon [ "--cache-dir"; cache_dir ] sock in
  let conn = connect sock in
  let cold = rpc conn (extract_req ~id:1 inverter_cif) in
  let warm = rpc conn (extract_req ~id:2 inverter_cif) in
  let jc = jparse cold and jw = jparse warm in
  check "extract: cold reply ok, not cached"
    (jbool (jget jc "ok") && not (jbool (jget jc "cached")));
  check "extract: warm reply ok, cached"
    (jbool (jget jw "ok") && jbool (jget jw "cached"));
  check_s "extract: warm result byte-identical to cold"
    (result_fragment warm) (result_fragment cold);
  check_s "extract: daemon wirelist = -j1 one-shot wirelist"
    (jstr (jget (jget jc "result") "wirelist"))
    (reference_wirelist inverter_cif);
  (* a tiled request is a cache miss (the grid is in the key) but its
     wirelist is byte-identical: tiling is invisible in the output *)
  let tiled = jparse (rpc conn (extract_req ~id:7 ~tile:"2x2" inverter_cif)) in
  check "extract: tiled reply ok, not cached"
    (jbool (jget tiled "ok") && not (jbool (jget tiled "cached")));
  check_s "extract: tiled wirelist = -j1 one-shot wirelist"
    (jstr (jget (jget tiled "result") "wirelist"))
    (reference_wirelist inverter_cif);
  let bad = jparse (rpc conn (extract_req ~id:8 ~tile:"0x2" inverter_cif)) in
  check "extract: malformed tile -> bad-request"
    (err_code bad = "bad-request");
  (* lint and flow ride the same cache *)
  let lint =
    jparse
      (rpc conn
         (Serve.Proto.obj
            [
              ("id", "3");
              ("op", Serve.Proto.str "lint");
              ("cif", Serve.Proto.str inverter_cif);
            ]))
  in
  check "lint: ok reply with findings array"
    (jbool (jget lint "ok")
    && match jget lint "findings" with Json.Arr _ -> true | _ -> false);
  let chain = chain_cif 4 in
  let flow =
    jparse
      (rpc conn
         (Serve.Proto.obj
            [
              ("id", "4");
              ("op", Serve.Proto.str "flow");
              ("cif", Serve.Proto.str chain);
            ]))
  in
  check "flow: ok reply with convergence flag"
    (jbool (jget flow "ok") && jbool (jget flow "converged"));
  let stats = jparse (rpc conn {|{"id":5,"op":"stats"}|}) in
  let cache_stats = jget stats "cache" in
  check "stats: cache hits and stores counted"
    (jnum (jget cache_stats "hits") >= 1 && jnum (jget cache_stats "stores") >= 1);
  close_conn conn;
  shutdown_daemon pid sock;
  check "shutdown: socket file removed" (not (Sys.file_exists sock))

(* ------------------------------------------------------------------ *)
(* 3b. Socket lvs: cold, warm byte-identity, one-shot agreement       *)

let lvs_req ?(id = 1) cif reference =
  Serve.Proto.obj
    [
      ("id", Serve.Proto.int id);
      ("op", Serve.Proto.str "lvs");
      ("cif", Serve.Proto.str cif);
      ("ref", Serve.Proto.str reference);
      ("jobs", Serve.Proto.int 1);
    ]

(* A raw sub-fragment of a reply between two markers, for byte-identity
   checks that bypass JSON re-rendering. *)
let raw_fragment reply start_marker stop_marker =
  let find sub from =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length reply then raise Not_found
      else if String.sub reply i n = sub then i
      else go (i + 1)
    in
    go from
  in
  let i = find start_marker 0 + String.length start_marker in
  let j = find stop_marker i in
  String.sub reply i (j - i)

let test_socket_lvs () =
  let dir = scratch () in
  let sock = Filename.concat dir "s.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let pid = start_socket_daemon [ "--cache-dir"; cache_dir ] sock in
  let conn = connect sock in
  let reference = data_file "inverter.swapped.sp" in
  let cold = rpc conn (lvs_req ~id:1 inverter_cif reference) in
  let warm = rpc conn (lvs_req ~id:2 inverter_cif reference) in
  let jc = jparse cold and jw = jparse warm in
  check "lvs: cold reply ok, not cached"
    (jbool (jget jc "ok") && not (jbool (jget jc "cached")));
  check "lvs: warm reply ok, cached"
    (jbool (jget jw "ok") && jbool (jget jw "cached"));
  check_s "lvs: warm result byte-identical to cold" (result_fragment warm)
    (result_fragment cold);
  let res = jget jc "result" in
  check "lvs: seeded fixture verdict is mismatch"
    (jstr (jget res "verdict") = "mismatch");
  (* the findings must be byte-identical to what the one-shot comparator
     renders for the same pair (acelvs --diag-format=json) *)
  let layout =
    let ast, _ = Ace_cif.Parser.parse_string_lenient inverter_cif in
    let design, _ = Ace_cif.Design.of_ast_lenient ast in
    Ace_core.Parallel.extract ~jobs:1 ~name:"chip" design
  in
  let ref_c, _ = Ace_lvs.Reference.parse reference in
  let r = Ace_lvs.Match.run ~layout ~reference:ref_c () in
  let expected =
    "["
    ^ String.concat ","
        (List.map
           (fun f -> Ace_diag.Diag.to_json (Ace_lvs.Report.to_diag f))
           r.Ace_lvs.Match.findings)
    ^ "]"
  in
  check_s "lvs: findings byte-identical to the in-process comparator"
    (raw_fragment cold "\"findings\":" ",\"fingerprints\":")
    expected;
  check "lvs: fingerprints present"
    (raw_fragment cold "\"fingerprints\":" ",\"devices\":" <> "[]");
  (* a clean pair reports clean and rides the same cache *)
  let clean =
    jparse (rpc conn (lvs_req ~id:3 inverter_cif (data_file "inverter.sp")))
  in
  check "lvs: clean pair verdict"
    (jbool (jget clean "ok")
    && jstr (jget (jget clean "result") "verdict") = "clean");
  (* a reference that fails to parse is a bad request, not a crash *)
  let bad = jparse (rpc conn (lvs_req ~id:4 inverter_cif "(DefPart oops")) in
  check "lvs: unreadable reference -> bad-request"
    (err_code bad = "bad-request");
  close_conn conn;
  shutdown_daemon pid sock

(* ------------------------------------------------------------------ *)
(* 3c. Socket lvs: hierarchical compare, Verilog references and       *)
(* finding caps ride the same cache with byte-identical warm replies  *)

let lvs_req_ext ?(id = 1) ?hier ?ref_format ?max_findings cif reference =
  Serve.Proto.obj
    ([
       ("id", Serve.Proto.int id);
       ("op", Serve.Proto.str "lvs");
       ("cif", Serve.Proto.str cif);
       ("ref", Serve.Proto.str reference);
       ("jobs", Serve.Proto.int 1);
     ]
    @ (match hier with
      | Some b -> [ ("hier", if b then "true" else "false") ]
      | None -> [])
    @ (match ref_format with
      | Some f -> [ ("ref_format", Serve.Proto.str f) ]
      | None -> [])
    @
    match max_findings with
    | Some n -> [ ("max_findings", Serve.Proto.int n) ]
    | None -> [])

let test_socket_lvs_hier () =
  let dir = scratch () in
  let sock = Filename.concat dir "s.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let pid = start_socket_daemon [ "--cache-dir"; cache_dir ] sock in
  let conn = connect sock in
  let mesh_cif = data_file "mesh4x4.cif" in
  let mesh_ref = data_file "mesh4x4.sp" in
  let cold = rpc conn (lvs_req_ext ~id:1 ~hier:true mesh_cif mesh_ref) in
  let warm = rpc conn (lvs_req_ext ~id:2 ~hier:true mesh_cif mesh_ref) in
  let jc = jparse cold and jw = jparse warm in
  check "hier lvs: cold ok, not cached"
    (jbool (jget jc "ok") && not (jbool (jget jc "cached")));
  check "hier lvs: warm ok, cached"
    (jbool (jget jw "ok") && jbool (jget jw "cached"));
  check_s "hier lvs: warm result byte-identical to cold"
    (result_fragment warm) (result_fragment cold);
  let res = jget jc "result" in
  check "hier lvs: verdict clean" (jstr (jget res "verdict") = "clean");
  check "hier lvs: payload carries the hier flag" (jbool (jget res "hier"));
  check "hier lvs: one distinct cell compared"
    (jnum (jget res "cell_matches") = 1);
  check "hier lvs: every other instance a memo hit"
    (jnum (jget res "cell_hits") = 15);
  check "hier lvs: no flat fallback" (not (jbool (jget res "fallback")));
  (* the flat request keys a distinct cache entry, same verdict *)
  let flat = jparse (rpc conn (lvs_req_ext ~id:3 mesh_cif mesh_ref)) in
  check "hier lvs: flat run misses the hier cache entry"
    (jbool (jget flat "ok") && not (jbool (jget flat "cached")));
  check "hier lvs: flat verdict agrees"
    (jstr (jget (jget flat "result") "verdict") = "clean");
  (* Verilog reference: warm replies byte-identical to cold *)
  let nand_cif = data_file "nand2.cif" and nand_v = data_file "nand2.v" in
  let vcold =
    rpc conn (lvs_req_ext ~id:4 ~ref_format:"verilog" nand_cif nand_v)
  in
  let vwarm =
    rpc conn (lvs_req_ext ~id:5 ~ref_format:"verilog" nand_cif nand_v)
  in
  let jvc = jparse vcold and jvw = jparse vwarm in
  check "verilog lvs: cold ok, not cached"
    (jbool (jget jvc "ok") && not (jbool (jget jvc "cached")));
  check "verilog lvs: warm ok, cached"
    (jbool (jget jvw "ok") && jbool (jget jvw "cached"));
  check_s "verilog lvs: warm result byte-identical to cold"
    (result_fragment vwarm) (result_fragment vcold);
  check "verilog lvs: verdict clean"
    (jstr (jget (jget jvc "result") "verdict") = "clean");
  (* max_findings caps per-code finding floods (cap + overflow note) *)
  let count_findings j =
    match jget (jget j "result") "findings" with
    | Json.Arr l -> List.length l
    | _ -> -1
  in
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay
      && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  let flood_ref =
    let b = Buffer.create 1024 in
    for k = 1 to 30 do
      Buffer.add_string b
        (Printf.sprintf "M%d D%d G%d S%d 0 ENH L=5U W=5U\n" k k k k)
    done;
    Buffer.add_string b ".END\n";
    Buffer.contents b
  in
  let fullr = rpc conn (lvs_req_ext ~id:6 inverter_cif flood_ref) in
  let cappedr =
    jparse (rpc conn (lvs_req_ext ~id:7 ~max_findings:2 inverter_cif flood_ref))
  in
  let full = jparse fullr in
  check "max_findings: default cap already truncates the flood"
    (contains fullr "more lvs-missing-device findings");
  check "max_findings: tighter cap shrinks the findings array"
    (count_findings cappedr < count_findings full);
  check "max_findings: verdict unchanged by the cap"
    (jstr (jget (jget cappedr "result") "verdict") = "mismatch");
  (* invalid knob values are bad requests, not crashes *)
  let badf =
    jparse (rpc conn (lvs_req_ext ~id:8 ~ref_format:"edif" nand_cif nand_v))
  in
  check "lvs: unknown ref_format -> bad-request" (err_code badf = "bad-request");
  let badn =
    jparse (rpc conn (lvs_req_ext ~id:9 ~max_findings:(-2) nand_cif flood_ref))
  in
  check "lvs: negative max_findings -> bad-request"
    (err_code badn = "bad-request");
  close_conn conn;
  shutdown_daemon pid sock

(* ------------------------------------------------------------------ *)
(* 4. Deadline expiry cancels a large extraction; daemon stays up     *)

let test_deadline () =
  let dir = scratch () in
  let sock = Filename.concat dir "s.sock" in
  let pid = start_socket_daemon [ "--no-cache" ] sock in
  let conn = connect sock in
  let tripped =
    List.exists
      (fun side ->
        let t0 = Unix.gettimeofday () in
        let reply =
          jparse (rpc conn (extract_req ~id:side ~deadline_ms:5 (ram_cif side)))
        in
        let elapsed_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
        if jbool (jget reply "ok") then false
        else begin
          check "deadline: error code is deadline-exceeded"
            (err_code reply = "deadline-exceeded");
          (* cancellation latency is polling-stride bound, far under the
             cold extraction time; allow generous scheduler slack *)
          check "deadline: reply came back promptly" (elapsed_ms < 2000);
          true
        end)
      [ 30; 60; 120 ]
  in
  check "deadline: a 5ms deadline trips on a big chip" tripped;
  (* the tiled path polls the same token in every tile scan and in the
     scheduler's steal loop: a short deadline on a tiled request trips
     just as promptly *)
  let tiled_tripped =
    List.exists
      (fun side ->
        let t0 = Unix.gettimeofday () in
        let reply =
          jparse
            (rpc conn
               (extract_req ~id:(100 + side) ~tile:"3x3" ~deadline_ms:5
                  (ram_cif side)))
        in
        let elapsed_ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
        if jbool (jget reply "ok") then false
        else begin
          check "deadline: tiled error code is deadline-exceeded"
            (err_code reply = "deadline-exceeded");
          check "deadline: tiled reply came back promptly" (elapsed_ms < 2000);
          true
        end)
      [ 30; 60; 120 ]
  in
  check "deadline: a 5ms deadline trips on a tiled extract" tiled_tripped;
  let pong = jparse (rpc conn {|{"id":9,"op":"ping"}|}) in
  check "deadline: daemon healthy afterwards" (jbool (jget pong "pong"));
  let ok = jparse (rpc conn (extract_req ~id:10 inverter_cif)) in
  check "deadline: subsequent undeadlined request succeeds"
    (jbool (jget ok "ok"));
  let stats = jparse (rpc conn {|{"id":11,"op":"stats"}|}) in
  check "deadline: deadline_kills counter ticked"
    (jnum (jget (jget stats "counters") "deadline_kills") >= 1);
  close_conn conn;
  shutdown_daemon pid sock

(* ------------------------------------------------------------------ *)
(* 5+6. Cache corruption faults: torn writes and bit flips heal       *)

let test_corruption fault =
  let dir = scratch () in
  let sock = Filename.concat dir "s.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let pid =
    start_socket_daemon [ "--cache-dir"; cache_dir; "--fault"; fault ] sock
  in
  let conn = connect sock in
  let r1 = rpc conn (extract_req ~id:1 inverter_cif) in
  let r2 = rpc conn (extract_req ~id:2 inverter_cif) in
  let j1 = jparse r1 and j2 = jparse r2 in
  check (fault ^ ": first reply ok (computed)") (jbool (jget j1 "ok"));
  check
    (fault ^ ": second reply recomputed, not served corrupt")
    (jbool (jget j2 "ok") && not (jbool (jget j2 "cached")));
  check_s (fault ^ ": recomputed result byte-identical")
    (result_fragment r2) (result_fragment r1);
  let stats = jparse (rpc conn {|{"id":3,"op":"stats"}|}) in
  check
    (fault ^ ": corrupt entry quarantined")
    (jnum (jget (jget stats "cache") "quarantined") >= 1);
  let quarantined =
    Sys.readdir cache_dir |> Array.to_list
    |> List.exists (fun n -> Filename.check_suffix n ".quarantined")
  in
  check (fault ^ ": quarantine file kept for post-mortem") quarantined;
  close_conn conn;
  shutdown_daemon pid sock

(* ------------------------------------------------------------------ *)
(* 7. A raising shard domain -> internal-error reply, healthy daemon  *)

let test_shard_raise () =
  let dir = scratch () in
  let sock = Filename.concat dir "s.sock" in
  let pid =
    start_socket_daemon [ "--no-cache"; "-j"; "2"; "--fault"; "shard-raise" ]
      sock
  in
  let conn = connect sock in
  let reply = jparse (rpc conn (extract_req ~id:1 inverter_cif)) in
  check "shard-raise: internal-error reply"
    ((not (jbool (jget reply "ok"))) && err_code reply = "internal-error");
  check "shard-raise: carries an exception fingerprint"
    (String.length (jstr (jget (jget reply "error") "fingerprint")) = 16);
  let pong = jparse (rpc conn {|{"id":2,"op":"ping"}|}) in
  check "shard-raise: daemon survives its shard" (jbool (jget pong "pong"));
  (* a 2x2 grid over 2 workers: the injected fault fires in whichever
     tile with index > 0 runs first — owned or stolen — and must
     propagate as the same typed error with every domain joined *)
  let tiled =
    jparse (rpc conn (extract_req ~id:3 ~jobs:2 ~tile:"2x2" inverter_cif))
  in
  check "shard-raise: tiled request -> internal-error"
    ((not (jbool (jget tiled "ok"))) && err_code tiled = "internal-error");
  let pong2 = jparse (rpc conn {|{"id":4,"op":"ping"}|}) in
  check "shard-raise: daemon survives a raising tile" (jbool (jget pong2 "pong"));
  (* a -j1 request takes the flat path: no spawned shard, no injection *)
  let flat = jparse (rpc conn (extract_req ~id:5 ~jobs:1 inverter_cif)) in
  check "shard-raise: flat fallback still works" (jbool (jget flat "ok"));
  close_conn conn;
  shutdown_daemon pid sock

(* ------------------------------------------------------------------ *)
(* 8. SIGKILL, stale temp, restart: warm cache byte-identical         *)

let test_kill_restart () =
  let dir = scratch () in
  let cache_dir = Filename.concat dir "cache" in
  let chip = ram_cif 8 in
  let sock1 = Filename.concat dir "s1.sock" in
  let pid1 = start_socket_daemon [ "--cache-dir"; cache_dir ] sock1 in
  let conn1 = connect sock1 in
  let cold = rpc conn1 (extract_req ~id:1 chip) in
  check "restart: cold reply ok" (jbool (jget (jparse cold) "ok"));
  close_conn conn1;
  (* no clean shutdown: the daemon dies hard *)
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  (* a writer killed mid-store leaves a temp file; plant one *)
  write_file
    (Filename.concat cache_dir ".tmp.deadbeefdeadbeef.1")
    "half-written garbage";
  let sock2 = Filename.concat dir "s2.sock" in
  let pid2 = start_socket_daemon [ "--cache-dir"; cache_dir ] sock2 in
  let conn2 = connect sock2 in
  let warm = rpc conn2 (extract_req ~id:1 chip) in
  let jw = jparse warm in
  check "restart: warm reply served from the persisted cache"
    (jbool (jget jw "ok") && jbool (jget jw "cached"));
  check_s "restart: warm result byte-identical to pre-kill cold"
    (result_fragment warm) (result_fragment cold);
  check_s "restart: warm wirelist = -j1 one-shot wirelist"
    (jstr (jget (jget jw "result") "wirelist"))
    (reference_wirelist chip);
  check "restart: stale temp file swept"
    (not (Sys.file_exists (Filename.concat cache_dir ".tmp.deadbeefdeadbeef.1")));
  close_conn conn2;
  shutdown_daemon pid2 sock2

(* ------------------------------------------------------------------ *)
(* 9. Sustained overload: structured rejections with retry hints      *)

let test_overload () =
  let dir = scratch () in
  let sock = Filename.concat dir "s.sock" in
  let pid =
    start_socket_daemon
      [ "--no-cache"; "--max-inflight"; "1"; "--fault"; "slow-request=600" ]
      sock
  in
  let results = Array.make 4 "" in
  let threads =
    Array.init 4 (fun i ->
        Thread.create
          (fun () ->
            let conn = connect sock in
            (* stagger slightly so one request reliably wins the slot *)
            if i > 0 then Unix.sleepf 0.15;
            results.(i) <- rpc conn (extract_req ~id:i inverter_cif);
            close_conn conn)
          ())
  in
  Array.iter Thread.join threads;
  let parsed = Array.to_list (Array.map jparse results) in
  let ok_count = List.length (List.filter (fun j -> jbool (jget j "ok")) parsed) in
  let overloaded =
    List.filter
      (fun j -> (not (jbool (jget j "ok"))) && err_code j = "overloaded")
      parsed
  in
  check "overload: at least one request served" (ok_count >= 1);
  check "overload: at least one structured rejection"
    (List.length overloaded >= 1);
  check "overload: rejections carry retry_after_ms"
    (List.for_all
       (fun j -> jnum (jget (jget j "error") "retry_after_ms") > 0)
       overloaded);
  let stats = jparse (rpc (connect sock) {|{"id":9,"op":"stats"}|}) in
  check "overload: overloads counter ticked"
    (jnum (jget (jget stats "counters") "overloads") >= 1);
  shutdown_daemon pid sock

(* ------------------------------------------------------------------ *)
(* 10. Oversized request lines: drained, rejected, connection usable  *)

let test_too_large () =
  let dir = scratch () in
  let sock = Filename.concat dir "s.sock" in
  let pid =
    start_socket_daemon [ "--no-cache"; "--max-request-bytes"; "500" ] sock
  in
  let conn = connect sock in
  let big = "{\"op\":\"extract\",\"cif\":\"" ^ String.make 4000 'B' ^ "\"}" in
  let r1 = jparse (rpc conn big) in
  check "too-large: typed rejection" (err_code r1 = "request-too-large");
  let r2 = jparse (rpc conn {|{"id":2,"op":"ping"}|}) in
  check "too-large: connection still usable" (jbool (jget r2 "pong"));
  close_conn conn;
  shutdown_daemon pid sock

(* ------------------------------------------------------------------ *)
(* 11. Cache unit tests (in-process)                                  *)

let test_cache_unit () =
  let module Cache = Serve.Cache in
  let dir = scratch () in
  (* a stale temp file from a "crashed" writer is swept at open *)
  write_file (Filename.concat dir ".tmp.cafe.1") "junk";
  let c =
    match Cache.open_dir ~faults:(Serve.Faults.none ()) dir with
    | Ok c -> c
    | Error m -> failwith m
  in
  check "cache: open sweeps stale temp files"
    (not (Sys.file_exists (Filename.concat dir ".tmp.cafe.1")));
  Cache.store c "aaaaaaaaaaaaaaaa" "payload-a";
  check "cache: roundtrip" (Cache.find c "aaaaaaaaaaaaaaaa" = Some "payload-a");
  check "cache: miss on unknown key" (Cache.find c "ffffffffffffffff" = None);
  (* truncation -> quarantine *)
  let path_a = Filename.concat dir "aaaaaaaaaaaaaaaa.ace" in
  let full = In_channel.with_open_bin path_a In_channel.input_all in
  write_file path_a (String.sub full 0 (String.length full - 3));
  check "cache: truncated entry is a miss" (Cache.find c "aaaaaaaaaaaaaaaa" = None);
  check "cache: truncated entry quarantined"
    (Sys.file_exists (path_a ^ ".quarantined"));
  (* version mismatch -> silent delete, no quarantine *)
  write_file path_a "ace-cache/0 0123456789abcdef 4\nold!";
  check "cache: old version is a miss" (Cache.find c "aaaaaaaaaaaaaaaa" = None);
  check "cache: old version deleted, not quarantined"
    (not (Sys.file_exists path_a));
  (* gc clears quarantine *)
  let g = Cache.gc c in
  check "cache: gc removes quarantined files"
    (g.Cache.removed_quarantined >= 1
    && not (Sys.file_exists (path_a ^ ".quarantined")));
  (* LRU eviction under a byte cap, with planted mtimes *)
  let dir2 = scratch () in
  let c2 =
    match
      Cache.open_dir ~max_bytes:250 ~faults:(Serve.Faults.none ()) dir2
    with
    | Ok c -> c
    | Error m -> failwith m
  in
  let payload = String.make 60 'x' in
  Cache.store c2 "0000000000000001" payload;
  Cache.store c2 "0000000000000002" payload;
  (* age both entries: key 1 older than key 2, both older than key 3 *)
  Unix.utimes (Filename.concat dir2 "0000000000000001.ace") 1000.0 1000.0;
  Unix.utimes (Filename.concat dir2 "0000000000000002.ace") 2000.0 2000.0;
  Cache.store c2 "0000000000000003" payload;
  (* three ~95-byte entries > 250-byte cap: the oldest must go *)
  check "cache: LRU evicts the oldest entry"
    (Cache.find c2 "0000000000000001" = None);
  check "cache: newer entries survive eviction"
    (Cache.find c2 "0000000000000002" = Some payload
    && Cache.find c2 "0000000000000003" = Some payload);
  let s = Cache.stats c2 in
  check "cache: eviction counted" (s.Cache.evictions >= 1);
  (* a hit refreshes LRU position: touch 2, add 4, 3 must be evicted *)
  Unix.utimes (Filename.concat dir2 "0000000000000002.ace") 1000.0 1000.0;
  Unix.utimes (Filename.concat dir2 "0000000000000003.ace") 2000.0 2000.0;
  ignore (Cache.find c2 "0000000000000002");
  Cache.store c2 "0000000000000004" payload;
  check "cache: touch-on-hit protects hot entries"
    (Cache.find c2 "0000000000000002" = Some payload
    && Cache.find c2 "0000000000000003" = None)

(* ------------------------------------------------------------------ *)
(* 12. Fault-spec parsing                                             *)

let test_fault_specs () =
  let module F = Serve.Faults in
  (match F.of_specs [ "cache-torn-write"; "slow-request=250"; "oom-soft" ] with
  | Ok f ->
      check "faults: specs parsed"
        (f.F.torn_write && f.F.slow_ms = 250 && f.F.oom_soft
        && (not f.F.bit_flip) && not f.F.shard_raise);
      check "faults: render roundtrip"
        (F.to_specs f = [ "cache-torn-write"; "slow-request=250"; "oom-soft" ])
  | Error m -> check ("faults: specs parsed: " ^ m) false);
  check "faults: unknown spec rejected"
    (match F.of_specs [ "set-on-fire" ] with Error _ -> true | Ok _ -> false);
  check "faults: bad delay rejected"
    (match F.of_specs [ "slow-request=soon" ] with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* 13. oom-soft: internal-error reply, daemon healthy                 *)

let test_oom_soft () =
  let replies =
    run_once
      ~args:[ "--no-cache"; "--fault"; "oom-soft" ]
      [ extract_req ~id:1 inverter_cif; {|{"id":2,"op":"ping"}|} ]
  in
  match List.map jparse replies with
  | [ r1; r2 ] ->
      check "oom-soft: internal-error reply" (err_code r1 = "internal-error");
      check "oom-soft: daemon healthy afterwards" (jbool (jget r2 "pong"))
  | _ -> check "oom-soft: two replies" false

(* ------------------------------------------------------------------ *)
(* 14. aced cache gc subcommand                                       *)

let test_cache_gc_cli () =
  let dir = scratch () in
  write_file (Filename.concat dir ".tmp.beef.2") "junk";
  write_file (Filename.concat dir "dead.ace.quarantined") "junk";
  let r_out, w_out = Unix.pipe ~cloexec:true () in
  let null = devnull () in
  let pid =
    Unix.create_process aced_exe
      [| aced_exe; "cache"; "gc"; "--cache-dir"; dir |]
      null w_out Unix.stderr
  in
  Unix.close null;
  Unix.close w_out;
  let ic = Unix.in_channel_of_descr r_out in
  let out = try input_line ic with End_of_file -> "" in
  close_in_noerr ic;
  reap pid;
  match Json.parse out with
  | Ok j ->
      check "cache gc: reports the sweep"
        (jnum (jget j "removed_tmp") = 1
        && jnum (jget j "removed_quarantined") = 1);
      check "cache gc: files removed"
        ((not (Sys.file_exists (Filename.concat dir ".tmp.beef.2")))
        && not (Sys.file_exists (Filename.concat dir "dead.ace.quarantined")))
  | Error m -> check ("cache gc: JSON output: " ^ m) false

(* ------------------------------------------------------------------ *)

let () =
  test_once_basics ();
  test_once_garbage ();
  test_socket_extract ();
  test_socket_lvs ();
  test_socket_lvs_hier ();
  test_deadline ();
  test_corruption "cache-torn-write";
  test_corruption "cache-bit-flip";
  test_shard_raise ();
  test_kill_restart ();
  test_overload ();
  test_too_large ();
  test_cache_unit ();
  test_fault_specs ();
  test_oom_soft ();
  test_cache_gc_cli ();
  rm_rf scratch_base;
  if !failures > 0 then begin
    Printf.printf "test_serve: %d FAILED\n%!" !failures;
    exit 1
  end
  else Printf.printf "test_serve: all passed\n%!"
