(* fuzz_cif — deterministic never-crash fuzzing of the lenient CIF
   front-end.

   No external fuzzing dependency: a seeded [Random.State] drives
   byte-level mutations of the data/ corpus plus generated random command
   soup.  Two properties are asserted on every input:

   1. totality — [Parser.parse_string_lenient] and
      [Design.of_ast_lenient] never raise;
   2. agreement — strict parsing succeeds exactly when the lenient run
      reports no Error-severity diagnostic, and on success both front
      ends produce the same AST (likewise for the semantic phase);
   3. lint totality — on every input small enough to extract, the full
      Ace_lint rule battery runs over the extracted circuit without
      raising (extraction itself is allowed to fail on fuzz garbage);
   4. tracing transparency — re-running the front end and the extractor
      with a recording Ace_trace session yields byte-identical
      diagnostics and wirelists (hence identical exit codes), the
      strict/lenient agreement of (2) still holds, and the exported
      Chrome trace parses and balances;
   5. protocol totality — the aced daemon's request handler never raises
      and always returns one well-formed JSON reply, whether the fuzz
      input arrives as a raw protocol line or embedded as the CIF
      payload of an extract request;
   6. LVS closure — every extractable input self-compares clean: the
      extracted circuit, round-tripped through the SPICE writer and the
      lenient reference parser, must LVS-match itself (in both
      directions) whenever the round trip is unambiguous, and the
      reference parser itself must be total on raw fuzz lines;
   7. mmap/string lexer equality — every fuzz input, written to a real
      file and parsed through the zero-copy memory-mapped path, yields
      the identical AST, diagnostics and strict-mode error as the
      in-memory string path;
   8. hierarchical LVS agreement — the structural-Verilog reference
      parser is total on raw fuzz text, and on every input HEXT can
      extract hierarchically, the hierarchical comparator returns
      exactly the flat comparator's verdict;
   9. tiled-extraction identity — every extractable input, re-extracted
      through the tiled parallel path under an input-seeded random tile
      grid, yields a wirelist byte-identical to the flat extractor's
      (hence identical output and exit code for any -j/--tile the CLI
      could choose).

   Runs as a bounded smoke test under `dune runtest` (fixed seed, ~500
   inputs, well under 5 s).  Set ACE_FUZZ_N / ACE_FUZZ_SEED to scale it
   up for longer campaigns. *)

module Diag = Ace_diag.Diag
module Parser = Ace_cif.Parser
module Design = Ace_cif.Design

let n_inputs =
  match Sys.getenv_opt "ACE_FUZZ_N" with Some s -> int_of_string s | None -> 500

let seed =
  match Sys.getenv_opt "ACE_FUZZ_SEED" with
  | Some s -> int_of_string s
  | None -> 0xACE1983

let rng = Random.State.make [| seed |]

let corpus =
  let dir =
    List.find Sys.file_exists [ "../data"; "data"; "_build/default/data" ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".cif")
  |> List.map (fun f ->
         let ic = open_in_bin (Filename.concat dir f) in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         s)

let () = assert (corpus <> [])

(* CIF-flavored alphabet so mutations stay near the interesting grammar
   instead of being rejected at the first byte *)
let alphabet = "PBWRLDCESF0123456789-;() \n\tMXYT94QZ"

let random_char () = alphabet.[Random.State.int rng (String.length alphabet)]

let mutate src =
  let b = Bytes.of_string src in
  let len = Bytes.length b in
  if len = 0 then String.make 1 (random_char ())
  else
    match Random.State.int rng 5 with
    | 0 ->
        (* flip some bytes *)
        for _ = 0 to Random.State.int rng 8 do
          Bytes.set b (Random.State.int rng len) (random_char ())
        done;
        Bytes.to_string b
    | 1 ->
        (* truncate *)
        Bytes.sub_string b 0 (Random.State.int rng len)
    | 2 ->
        (* delete a span *)
        let i = Random.State.int rng len in
        let n = min (len - i) (1 + Random.State.int rng 40) in
        Bytes.sub_string b 0 i ^ Bytes.sub_string b (i + n) (len - i - n)
    | 3 ->
        (* insert a random fragment *)
        let i = Random.State.int rng (len + 1) in
        let frag =
          String.init (1 + Random.State.int rng 12) (fun _ -> random_char ())
        in
        Bytes.sub_string b 0 i ^ frag ^ Bytes.sub_string b i (len - i)
    | _ ->
        (* splice: duplicate a slice somewhere else *)
        let i = Random.State.int rng len in
        let n = min (len - i) (1 + Random.State.int rng 60) in
        let j = Random.State.int rng (len + 1) in
        Bytes.sub_string b 0 j
        ^ Bytes.sub_string b i n
        ^ Bytes.sub_string b j (len - j)

let random_soup () =
  String.init (Random.State.int rng 400) (fun _ -> random_char ())

let failures = ref 0

let fail_input what input e =
  incr failures;
  Printf.eprintf "FUZZ FAILURE (%s): %s\n  input (%d bytes): %S\n" what
    (Printexc.to_string e) (String.length input)
    (if String.length input > 400 then String.sub input 0 400 ^ "..." else input)

let has_error diags = List.exists Diag.is_error diags

(* property 4: tracing is an observer.  With a recording session active
   the lenient parse must report exactly the diagnostics it reported
   untraced (so CLI exit codes cannot change), strict/lenient agreement
   must still hold, extraction must yield the identical wirelist, and the
   trace we then export must be structurally valid. *)
let traced_transparent input untraced_pdiags design untraced_wl =
  Ace_trace.Trace.start ();
  (try
     let _, tdiags = Parser.parse_string_lenient input in
     if tdiags <> untraced_pdiags then
       fail_input "tracing changed the parse diagnostics" input
         (Failure "diag mismatch");
     let strict_fails =
       match Parser.parse_string input with
       | _ -> false
       | exception Parser.Error _ -> true
       | exception e ->
           fail_input "traced strict parse raised non-Error" input e;
           true
     in
     if strict_fails <> has_error tdiags then
       fail_input "strict/lenient disagreement with tracing on" input
         (Failure "disagreement");
     match Ace_core.Extractor.extract ~name:"fuzz" design with
     | exception e -> fail_input "traced extract raised" input e
     | c ->
         if Ace_netlist.Wirelist.to_string c <> untraced_wl then
           fail_input "tracing changed the wirelist" input
             (Failure "wirelist mismatch")
   with e -> fail_input "traced run raised" input e);
  let session = Ace_trace.Trace.stop () in
  match Ace_trace.Chrome.validate (Ace_trace.Chrome.render session) with
  | Ok _ -> ()
  | Error m -> fail_input "exported trace invalid" input (Failure m)

(* property 6: LVS closure.  The SPICE writer auto-names unnamed nets
   (N<i>) and aliases GND to node 0; when that naming is injective over
   the device-connected nets, the round trip preserves the net partition
   exactly and the comparator must find the circuit equivalent to
   itself, both ways.  When two nets collide onto one node token the
   round trip genuinely merges them, so only totality is required. *)
let lvs_self input (circuit : Ace_netlist.Circuit.t) =
  let open Ace_netlist in
  let sanitize name =
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
      name
  in
  let gnd_net =
    match Circuit.find_net circuit "GND" with
    | n -> Some n
    | exception Not_found -> None
  in
  let used = Hashtbl.create 16 in
  Array.iter
    (fun (d : Circuit.device) ->
      List.iter
        (fun n -> Hashtbl.replace used n ())
        [ d.gate; d.source; d.drain ])
    circuit.Circuit.devices;
  let injective =
    let seen = Hashtbl.create 16 in
    Hashtbl.fold
      (fun n () ok ->
        let tok =
          if Some n = gnd_net then "0"
          else
            match circuit.Circuit.nets.(n).Circuit.names with
            | name :: _ -> sanitize name
            | [] -> Printf.sprintf "N%d" n
        in
        let key =
          if tok = "0" then "GND" else String.uppercase_ascii tok
        in
        if key = "" || Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          ok
        end)
      used true
  in
  match
    let spice = Spice.to_string circuit in
    let reference, _diags = Ace_lvs.Reference.parse spice in
    ( Ace_lvs.Match.run ~layout:circuit ~reference (),
      Ace_lvs.Match.run ~layout:reference ~reference:circuit () )
  with
  | exception e -> fail_input "self-LVS raised" input e
  | fwd, bwd ->
      if injective then begin
        if fwd.Ace_lvs.Match.outcome <> Ace_lvs.Match.Clean then
          fail_input "self-LVS not clean" input (Failure "mismatch");
        if bwd.Ace_lvs.Match.outcome <> Ace_lvs.Match.Clean then
          fail_input "swapped self-LVS not clean" input (Failure "mismatch")
      end

(* property 8 (second half): whenever HEXT extracts a hierarchy from the
   fuzz design, comparing it hierarchically against its own flattened
   SPICE round trip must be total and must return the same verdict as
   the flat comparator — the soundness contract Hier.run documents. *)
let hier_agrees input design =
  match Ace_hext.Hext.extract design with
  | exception _ -> () (* garbage in, no hierarchy out: acceptable *)
  | hl, _stats -> (
      match Ace_netlist.Hier.flatten hl with
      | exception e -> fail_input "Hier.flatten raised" input e
      | flat_circuit -> (
          let spice = Ace_netlist.Spice.to_string flat_circuit in
          match Ace_lvs.Reference.load ~name:"fuzz" spice with
          | Error _ -> ()
          | exception e ->
              fail_input "Reference.load raised on writer output" input e
          | Ok (reference, _) -> (
              let ref_view = Ace_lvs.Reference.hier_view ~name:"fuzz" spice in
              match
                ( Ace_lvs.Hier.run ~layout:hl ~reference ?ref_view (),
                  Ace_lvs.Match.run ~layout:flat_circuit ~reference () )
              with
              | exception e -> fail_input "hierarchical LVS raised" input e
              | h, f ->
                  if
                    h.Ace_lvs.Hier.r.Ace_lvs.Match.outcome
                    <> f.Ace_lvs.Match.outcome
                  then
                    fail_input "hierarchical and flat LVS verdicts differ"
                      input (Failure "disagreement"))))

(* property 9: the tiled parallel extractor is byte-equal to the flat
   one on anything the flat one can extract.  The grid and worker count
   are seeded from the input bytes, so the corpus as a whole sweeps
   ragged multi-row grids while each individual input stays
   reproducible.  The steal schedule is whatever the machine does that
   run — the property asserts it cannot matter. *)
let tiled_agrees input design flat_wl =
  let h = Hashtbl.hash input in
  let cols = 1 + (h mod 4)
  and rows = 1 + (h / 4 mod 4)
  and jobs = 1 + (h / 16 mod 3) in
  match Ace_core.Parallel.extract ~jobs ~tile:(cols, rows) ~name:"fuzz" design with
  | exception e ->
      fail_input
        (Printf.sprintf "tiled extract (%dx%d -j%d) raised where flat succeeded"
           cols rows jobs)
        input e
  | tiled ->
      if Ace_netlist.Wirelist.to_string tiled <> flat_wl then
        fail_input
          (Printf.sprintf "tiled wirelist (%dx%d -j%d) differs from flat" cols
             rows jobs)
          input (Failure "disagreement")

(* property 3: the lint battery is total over whatever the extractor
   produces.  Extraction failures on fuzz garbage are tolerated (and the
   design is size-guarded so pathological inputs cannot stall the run),
   but [Ace_lint.Engine.run] itself must never raise. *)
let lint_total input pdiags design =
  let small =
    match Design.bbox design with
    | None -> true
    | Some bb ->
        bb.Ace_geom.Box.r - bb.l < 1_000_000 && bb.t - bb.b < 1_000_000
  in
  let boxes = try Design.count_boxes design with _ -> max_int in
  if small && boxes < 5_000 then
    match Ace_core.Extractor.extract ~name:"fuzz" design with
    | exception _ -> () (* garbage in, no circuit out: acceptable *)
    | circuit -> (
        (match Ace_lint.Engine.run circuit with
        | _findings -> ()
        | exception e -> fail_input "lint raised" input e);
        lvs_self input circuit;
        hier_agrees input design;
        tiled_agrees input design (Ace_netlist.Wirelist.to_string circuit);
        traced_transparent input pdiags design
          (Ace_netlist.Wirelist.to_string circuit);
        (* property 3b: the flow analysis is total on any extracted
           circuit, rails or not (forced rail indices) *)
        let nc = Ace_netlist.Circuit.net_count circuit in
        if nc > 0 then
          match
            Ace_flow.Ternary.analyze circuit ~vdd:0 ~gnd:(min 1 (nc - 1))
          with
          | _verdict -> ()
          | exception e -> fail_input "flow raised" input e)

let run_one input =
  (* property 1: totality of the lenient front end *)
  match Parser.parse_string_lenient input with
  | exception e -> fail_input "parse_string_lenient raised" input e
  | lenient_ast, pdiags -> (
      (match Design.of_ast_lenient lenient_ast with
      | exception e -> fail_input "of_ast_lenient raised" input e
      | design, _sdiags -> lint_total input pdiags design);
      (* property 2: strict/lenient agreement *)
      match Parser.parse_string input with
      | exception Parser.Error _ ->
          if not (has_error pdiags) then
            fail_input "strict failed but lenient saw no error" input
              (Failure "disagreement")
      | exception e -> fail_input "parse_string raised non-Error" input e
      | strict_ast -> (
          if has_error pdiags then
            fail_input "strict ok but lenient reported errors" input
              (Failure "disagreement")
          else if strict_ast <> lenient_ast then
            fail_input "strict and lenient ASTs differ" input
              (Failure "disagreement");
          match Design.of_ast strict_ast with
          | exception Design.Semantic_error _ -> (
              match Design.of_ast_lenient strict_ast with
              | _, sdiags ->
                  if not (has_error sdiags) then
                    fail_input "strict design failed but lenient saw no error"
                      input (Failure "disagreement")
              | exception e -> fail_input "of_ast_lenient raised" input e)
          | exception e -> fail_input "of_ast raised unexpected" input e
          | strict_design -> (
              match Design.of_ast_lenient strict_ast with
              | lenient_design, sdiags -> (
                  if has_error sdiags then
                    fail_input "strict design ok but lenient errored" input
                      (Failure "disagreement");
                  (* lenient box counting must be total even where strict
                     counting raises (degenerate wires/flashes slip past
                     of_ast); only compare counts when strict succeeds and
                     the design is small enough to decompose quickly *)
                  let small =
                    match Design.bbox strict_design with
                    | None -> true
                    | Some bb ->
                        bb.Ace_geom.Box.r - bb.l < 1_000_000
                        && bb.t - bb.b < 1_000_000
                  in
                  if small then
                    match Design.count_boxes lenient_design with
                    | exception e ->
                        fail_input "lenient count_boxes raised" input e
                    | lenient_count -> (
                        match Design.count_boxes strict_design with
                        | exception _ -> () (* latent strict-mode weakness *)
                        | strict_count ->
                            if strict_count <> lenient_count then
                              fail_input "strict and lenient designs differ"
                                input (Failure "disagreement")))
              | exception e -> fail_input "of_ast_lenient raised" input e)))

(* property 7: the memory-mapped lexer path is indistinguishable from the
   in-memory string path — same lenient AST and diagnostics, same strict
   outcome — on arbitrary (including malformed) bytes.  Each probe writes
   the input to a scratch file and opens it for real, so the mmap branch,
   not the fallback, is exercised. *)
let mmap_equiv input =
  let path = Filename.temp_file "ace_fuzz_mmap" ".cif" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc input;
      close_out oc;
      match Parser.open_file path with
      | exception e -> fail_input "open_file raised" input e
      | minput ->
          if input <> "" && not (Parser.input_is_mapped minput) then
            fail_input "regular file not memory-mapped" input
              (Failure "fallback engaged");
          if Parser.input_to_string minput <> input then
            fail_input "mapped bytes differ from written bytes" input
              (Failure "content mismatch");
          (match
             ( Parser.parse_input_lenient minput,
               Parser.parse_string_lenient input )
           with
          | (ast_m, diags_m), (ast_s, diags_s) ->
              if ast_m <> ast_s then
                fail_input "mmap and string lenient ASTs differ" input
                  (Failure "AST mismatch");
              if diags_m <> diags_s then
                fail_input "mmap and string lenient diags differ" input
                  (Failure "diag mismatch")
          | exception e -> fail_input "lenient mmap parse raised" input e);
          let strict p =
            match p () with
            | (_ : Ace_cif.Ast.file) -> Ok ()
            | exception Parser.Error { position; message } ->
                Error (position, message)
          in
          let m = strict (fun () -> Parser.parse_input minput) in
          let s = strict (fun () -> Parser.parse_string input) in
          if m <> s then
            fail_input "mmap and string strict outcomes differ" input
              (Failure "strict mismatch"))

(* property 5: one shared in-process server (no cache, no faults), fed
   the same fuzz inputs the front-end properties use *)
let serve_state =
  lazy
    (Ace_serve.Server.create (Ace_serve.Server.config ~max_inflight:2 ()))

let protocol_total input ~as_request =
  let t = Lazy.force serve_state in
  let line =
    if as_request then
      Ace_serve.Proto.obj
        [
          ("id", "0");
          ("op", Ace_serve.Proto.str "extract");
          ("cif", Ace_serve.Proto.str input);
          ("cache", "false");
        ]
    else input
  in
  match Ace_serve.Server.handle_line t line with
  | reply -> (
      match Ace_trace.Json.parse reply with
      | Ok (Ace_trace.Json.Obj fields) ->
          if not (List.mem_assoc "ok" fields) then
            fail_input "protocol reply missing \"ok\"" input (Failure reply)
      | Ok _ ->
          fail_input "protocol reply not a JSON object" input (Failure reply)
      | Error m -> fail_input "protocol reply unparseable" input (Failure m))
  | exception e -> fail_input "Server.handle_line raised" input e

let () =
  let n_corpus = List.length corpus in
  let t0 = Unix.gettimeofday () in
  (* the clean corpus itself, un-mutated *)
  List.iter run_one corpus;
  List.iter mmap_equiv corpus;
  List.iter (fun c -> protocol_total c ~as_request:true) corpus;
  for i = 0 to n_inputs - 1 do
    let input =
      if i mod 4 = 3 then random_soup ()
      else mutate (List.nth corpus (Random.State.int rng n_corpus))
    in
    run_one input;
    (* property 6b: the lenient reference parser is total on raw fuzz
       text (both entry points; load also exercises the format sniff) *)
    (match Ace_lvs.Reference.parse input with
    | _circuit, _diags -> ()
    | exception e -> fail_input "Reference.parse raised" input e);
    (match Ace_lvs.Reference.load input with
    | Ok _ | Error _ -> ()
    | exception e -> fail_input "Reference.load raised" input e);
    (* property 8a: the structural-Verilog front end never raises, no
       matter how far from Verilog the bytes are *)
    (match Ace_lvs.Verilog.parse input with
    | _circuit, _diags -> ()
    | exception e -> fail_input "Verilog.parse raised" input e);
    protocol_total input ~as_request:false;
    (* file round-trips cost a syscall pair each; sample them *)
    if i mod 4 = 0 then mmap_equiv input;
    (* wrapped extraction is the expensive path; sample it *)
    if i mod 8 = 0 then protocol_total input ~as_request:true
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf
    "fuzz_cif: %d inputs (%d corpus + %d mutated/generated), seed %#x, %d \
     failures, %.2f s\n"
    (n_corpus + n_inputs) n_corpus n_inputs seed !failures elapsed;
  if !failures > 0 then exit 1
