(* Ace_trace: span nesting, timestamp monotonicity, counter accounting
   across shards, Timing/span agreement, and exception safety.

   The recording flag is process-global, so every test that records wraps
   its session in [record] to guarantee stop() runs (alcotest keeps going
   after a failure and a leaked session would poison later tests). *)

module Trace = Ace_trace.Trace
module Chrome = Ace_trace.Chrome
module Parallel = Ace_core.Parallel
module Timing = Ace_core.Timing

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let record f =
  Trace.start ();
  let r = Fun.protect ~finally:(fun () -> ignore (Trace.stop ())) f in
  (* stop() may already have been called inside f; calling it twice is
     harmless (second session is empty), and this way no failure path can
     leave recording on. *)
  r

let session_of f =
  Trace.start ();
  match f () with
  | () -> Trace.stop ()
  | exception e ->
      ignore (Trace.stop ());
      raise e

let data_design file =
  let dir =
    List.find Sys.file_exists [ "../data"; "data"; "_build/default/data" ]
  in
  Ace_cif.Design.of_ast
    (Ace_cif.Parser.parse_file (Filename.concat dir file))

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_slugs_unique () =
  let slugs = List.map Trace.Counter.slug Trace.Counter.all in
  check_int "cardinal" Trace.Counter.cardinal (List.length Trace.Counter.all);
  check_int "unique slugs"
    (List.length slugs)
    (List.length (List.sort_uniq compare slugs));
  List.iteri
    (fun i c -> check_int "index order" i (Trace.Counter.index c))
    Trace.Counter.all

let total c =
  List.assoc c (Trace.counter_totals ())

let test_counter_accumulation () =
  let before = total Trace.Counter.Uf_finds in
  Trace.count Trace.Counter.Uf_finds 5;
  Trace.incr Trace.Counter.Uf_finds;
  check_int "count + incr" (before + 6) (total Trace.Counter.Uf_finds)

(* ------------------------------------------------------------------ *)
(* Span structure: random trees must balance with monotone clocks      *)
(* ------------------------------------------------------------------ *)

(* A small program of nested spans, instants and track switches. *)
type prog =
  | Leaf
  | Instant of int
  | Span of int * prog list
  | Track of int * prog list

let gen_prog =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof [ return Leaf; map (fun i -> Instant i) (int_range 0 5) ]
      else
        frequency
          [
            (2, return Leaf);
            (2, map (fun i -> Instant i) (int_range 0 5));
            ( 4,
              let* name = int_range 0 5 in
              let* kids = list_size (int_range 0 3) (self (n / 2)) in
              return (Span (name, kids)) );
            ( 1,
              let* t = int_range 1 3 in
              let* kids = list_size (int_range 0 3) (self (n / 2)) in
              return (Track (t, kids)) );
          ])

let rec exec = function
  | Leaf -> ignore (Sys.opaque_identity (List.init 3 Fun.id))
  | Instant i -> Trace.instant (Printf.sprintf "i%d" i)
  | Span (name, kids) ->
      Trace.with_span (Printf.sprintf "s%d" name) (fun () ->
          List.iter exec kids)
  | Track (t, kids) ->
      Trace.with_track ~tid:(100 + t) ~name:(Printf.sprintf "track %d" t)
        (fun () -> List.iter exec kids)

(* Direct structural check on the exported events, independent of the
   Chrome renderer: per track, timestamps are monotone non-decreasing and
   Begin/End bracket like parentheses with matching names. *)
let track_well_formed (t : Trace.track) =
  let ok = ref true in
  let last_ts = ref Int64.min_int in
  let stack = ref [] in
  Array.iter
    (fun (e : Trace.event) ->
      if Int64.compare e.ts !last_ts < 0 then ok := false;
      last_ts := e.ts;
      match e.kind with
      | Trace.Begin -> stack := e.ename :: !stack
      | Trace.End -> (
          match !stack with
          | top :: rest when top = e.ename -> stack := rest
          | _ -> ok := false)
      | Trace.Instant -> ())
    t.t_events;
  !ok && !stack = []

let prop_spans_balance =
  Tutil.qtest ~count:200 "random span trees balance per track" gen_prog
    (fun prog ->
      let session = session_of (fun () -> exec prog) in
      List.for_all track_well_formed session.tracks
      &&
      match Chrome.validate (Chrome.render session) with
      | Ok _ -> true
      | Error m -> QCheck2.Test.fail_reportf "chrome validate: %s" m)

let prop_zero_render_stable =
  Tutil.qtest ~count:50 "zeroed render is validatable and stable" gen_prog
    (fun prog ->
      let session = session_of (fun () -> exec prog) in
      let a = Chrome.render ~zero:true session in
      (match Chrome.validate a with
      | Ok _ -> ()
      | Error m -> QCheck2.Test.fail_reportf "zeroed validate: %s" m);
      (* zeroing is a pure function of the session *)
      a = Chrome.render ~zero:true session)

(* ------------------------------------------------------------------ *)
(* Exception safety                                                    *)
(* ------------------------------------------------------------------ *)

exception Boom

let test_span_closes_on_raise () =
  record (fun () ->
      (try Trace.with_span "outer" (fun () -> raise Boom)
       with Boom -> ());
      (* the span must be closed: a sibling span at the same depth keeps
         the track balanced *)
      Trace.with_span "sibling" (fun () -> ());
      let session = Trace.stop () in
      check "balanced after raise" true
        (List.for_all track_well_formed session.tracks);
      check "renders valid" true
        (Result.is_ok (Chrome.validate (Chrome.render session))))

let test_timed_elapsed_on_raise () =
  List.iter
    (fun recording ->
      let saw = ref (-1.0) in
      let run () =
        try Trace.timed "t" (fun dt -> saw := dt) (fun () -> raise Boom)
        with Boom -> ()
      in
      if recording then record run else run ();
      check
        (Printf.sprintf "on_elapsed called (recording=%b)" recording)
        true (!saw >= 0.0))
    [ false; true ]

let test_track_restored_on_raise () =
  record (fun () ->
      let before = Trace.current_track () in
      (try
         Trace.with_track ~tid:77 ~name:"doomed" (fun () -> raise Boom)
       with Boom -> ());
      check "track restored" true (Trace.current_track () = before))

(* ------------------------------------------------------------------ *)
(* Extraction accounting: shards, totals, Timing agreement             *)
(* ------------------------------------------------------------------ *)

(* Global lifetime counter totals must advance by exactly the session's
   per-track deltas, and every shard's published s_counters must be the
   session counters of its own track — under both -j1 and -j4. *)
let test_shard_counter_totals () =
  let design = data_design "chain4.cif" in
  List.iter
    (fun jobs ->
      Trace.start ();
      let before = Trace.counter_totals () in
      let _, stats = Parallel.extract_with_stats ~jobs design in
      let after = Trace.counter_totals () in
      let session = Trace.stop () in
      let deltas =
        List.map2 (fun (c, a) (_, b) -> (c, a - b)) after before
      in
      check
        (Printf.sprintf "totals delta = session totals (-j%d)" jobs)
        true
        (deltas = Trace.session_counter_totals session);
      List.iteri
        (fun idx (s : Parallel.shard) ->
          match
            List.find_opt
              (fun (t : Trace.track) -> t.t_tid = idx + 1)
              session.tracks
          with
          | Some t ->
              check
                (Printf.sprintf "shard %d counters (-j%d)" idx jobs)
                true
                (s.s_counters = t.t_counters)
          | None ->
              (* a shard with no events and all-zero counters is elided *)
              check
                (Printf.sprintf "elided shard %d is empty (-j%d)" idx jobs)
                true
                (Array.for_all (( = ) 0) s.s_counters))
        stats.shards;
      (* shard contributions never exceed the whole session *)
      let sum c =
        List.fold_left
          (fun a (s : Parallel.shard) ->
            a + s.s_counters.(Trace.Counter.index c))
          0 stats.shards
      in
      List.iter
        (fun (c, v) ->
          check
            (Printf.sprintf "shards <= total for %s (-j%d)"
               (Trace.Counter.slug c) jobs)
            true (sum c <= v))
        (Trace.session_counter_totals session))
    [ 1; 4 ]

(* Phase seconds reconstructed from a shard's span events equal the
   shard's legacy Timing numbers *exactly*: Timing.charge derives both
   from the same two clock samples. *)
let phase_seconds_of_track (t : Trace.track) =
  let acc = Hashtbl.create 8 in
  let stack = ref [] in
  Array.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Begin -> stack := e :: !stack
      | Trace.End -> (
          match !stack with
          | b :: rest ->
              stack := rest;
              let dt =
                Int64.to_float (Int64.sub e.ts b.Trace.ts) /. 1e9
              in
              let prev =
                Option.value ~default:0.0 (Hashtbl.find_opt acc e.ename)
              in
              Hashtbl.replace acc e.ename (prev +. dt)
          | [] -> ())
      | Trace.Instant -> ())
    t.t_events;
  acc

let test_timing_agrees_with_spans () =
  let design = data_design "mesh4x4.cif" in
  let stats = ref None in
  let session =
    session_of (fun () ->
        stats := Some (snd (Parallel.extract_with_stats ~jobs:2 design)))
  in
  let stats = Option.get !stats in
  List.iteri
    (fun idx (s : Parallel.shard) ->
      match
        List.find_opt
          (fun (t : Trace.track) -> t.t_tid = idx + 1)
          session.tracks
      with
      | None -> Alcotest.failf "shard %d track missing" idx
      | Some t ->
          let from_spans = phase_seconds_of_track t in
          List.iter
            (fun phase ->
              let slug = Timing.phase_slug phase in
              let spans =
                Option.value ~default:0.0 (Hashtbl.find_opt from_spans slug)
              in
              let legacy = Timing.seconds s.s_timing phase in
              if spans <> legacy then
                Alcotest.failf
                  "shard %d %s: spans %.17g <> timing %.17g" idx slug spans
                  legacy)
            [ Timing.Front_end; Timing.List_update; Timing.Devices ])
    stats.shards

(* Tracing must not change what the extractor produces. *)
let test_tracing_is_transparent () =
  let design = data_design "mesh4x4.cif" in
  let plain = Parallel.extract ~jobs:4 ~name:"m" design in
  let traced = ref None in
  let session =
    session_of (fun () ->
        traced := Some (Parallel.extract ~jobs:4 ~name:"m" design))
  in
  check "wirelist identical under tracing" true
    (Ace_netlist.Wirelist.to_string plain
    = Ace_netlist.Wirelist.to_string (Option.get !traced));
  (* -j4 publishes one track per shard plus stitch plus main *)
  let tids = List.map (fun (t : Trace.track) -> t.t_tid) session.tracks in
  List.iter
    (fun tid -> check (Printf.sprintf "track %d present" tid) true
        (List.mem tid tids))
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "trace"
    [
      ( "counters",
        [
          Alcotest.test_case "slug/index" `Quick test_counter_slugs_unique;
          Alcotest.test_case "accumulation" `Quick test_counter_accumulation;
        ] );
      ( "spans",
        [
          prop_spans_balance;
          prop_zero_render_stable;
          Alcotest.test_case "span closes on raise" `Quick
            test_span_closes_on_raise;
          Alcotest.test_case "timed elapsed on raise" `Quick
            test_timed_elapsed_on_raise;
          Alcotest.test_case "track restored on raise" `Quick
            test_track_restored_on_raise;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "shard counter totals" `Quick
            test_shard_counter_totals;
          Alcotest.test_case "timing = spans" `Quick
            test_timing_agrees_with_spans;
          Alcotest.test_case "tracing transparent" `Quick
            test_tracing_is_transparent;
        ] );
    ]
