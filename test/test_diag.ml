(* Malformed-input behavior of the CIF front-end: structured diagnostics,
   parser recovery, lenient semantic checking, and the strict-vs-lenient
   agreement property. *)

module Diag = Ace_diag.Diag
module Collector = Ace_diag.Collector
module Parser = Ace_cif.Parser
module Design = Ace_cif.Design

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let codes diags = List.map (fun (d : Diag.t) -> d.code) diags
let has_code c diags = List.mem c (codes diags)
let errors diags = List.filter Diag.is_error diags

let lenient = Parser.parse_string_lenient
let strict_ok s = match Parser.parse_string s with _ -> true | exception Parser.Error _ -> false

(* ------------------------------------------------------------------ *)
(* Diag / Collector                                                     *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_diag_text () =
  let src = "L ND;\nB 2 2 0;\nE" in
  let d = Diag.error ~span:{ Diag.start = 12; stop = 13 } ~code:"x-test" "boom" in
  let s = Diag.to_string ~source:src d in
  check "has severity and code" true (contains s "error[x-test]");
  check "has line 2" true (contains s "line 2");
  check "has caret" true (contains s "^");
  check "has source line" true (contains s "B 2 2 0;")

let test_diag_json () =
  let d =
    Diag.warning ~span:{ Diag.start = 3; stop = 4 } ~code:"x-json"
      "say \"hi\"\n"
  in
  let j = Diag.to_json ~source:"abc def" d in
  check_string "json"
    "{\"severity\":\"warning\",\"code\":\"x-json\",\"message\":\"say \\\"hi\\\"\\n\",\"start\":3,\"end\":4,\"line\":1,\"column\":4}"
    j

let test_diag_severity () =
  check "max severity" true
    (Diag.max_severity
       [ Diag.hint ~code:"a" "h"; Diag.warning ~code:"b" "w" ]
    = Some Diag.Warning);
  check "empty" true (Diag.max_severity [] = None)

let test_collector_cap () =
  let c = Collector.create ~max_errors:3 () in
  for i = 1 to 10 do
    Collector.add c (Diag.error ~code:"e" (string_of_int i))
  done;
  Collector.add c (Diag.warning ~code:"w" "kept");
  check "saturated" true (Collector.saturated c);
  check_int "errors capped" 3 (Collector.error_count c);
  let l = Collector.to_list c in
  (* 3 errors + 1 warning + trailing too-many-errors hint *)
  check_int "list length" 5 (List.length l);
  check "hint last" true
    (match List.rev l with
    | last :: _ -> last.Diag.code = "too-many-errors"
    | [] -> false)

(* ------------------------------------------------------------------ *)
(* Parser recovery                                                      *)
(* ------------------------------------------------------------------ *)

let test_unterminated_comment () =
  let ast, diags = lenient "L ND; B 2 2 0 0; (oops E" in
  check "diagnosed" true (has_code "cif-unterminated-comment" diags);
  check "missing end too" true (has_code "cif-missing-end" diags);
  check_int "box survived" 1 (List.length ast.Ace_cif.Ast.top_level)

let test_truncated_command () =
  let ast, diags = lenient "L ND; B 2 2 0; B 4 4 1 1; E" in
  check "diagnosed" true (has_code "cif-expected-integer" diags);
  (* the malformed box is dropped, the following one survives *)
  check_int "one box" 1 (List.length ast.Ace_cif.Ast.top_level)

let test_multiple_errors_one_run () =
  let _, diags = lenient "Q; L ND; B 2 2 0; W Q 1 1; B 2 2 0 0; E" in
  check_int "three errors" 3 (List.length (errors diags));
  check "unknown command" true (has_code "cif-unknown-command" diags);
  check "expected integer" true (has_code "cif-expected-integer" diags)

let test_integer_overflow_regression () =
  (* a huge literal used to escape as a bare [Failure _] from
     [int_of_string]; it must be a positioned parse error in strict mode
     and a diagnostic in lenient mode *)
  let src = "L ND; B 99999999999999999999 2 0 0; E" in
  (match Parser.parse_string src with
  | exception Parser.Error { message; _ } ->
      check "mentions range" true (contains message "out of range")
  | exception e ->
      Alcotest.failf "expected Parser.Error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected an error");
  let _, diags = lenient src in
  check "lenient code" true (has_code "cif-integer-overflow" diags)

let test_resync_at_df () =
  (* the error inside the definition must not swallow the DF *)
  let ast, diags = lenient "DS 1; L ND; B 2 2 Q Q; DF; C 1; E" in
  check "has error" true (errors diags <> []);
  check_int "symbol committed" 1 (List.length ast.Ace_cif.Ast.symbols)

let test_end_inside_definition () =
  let ast, diags = lenient "DS 1; L ND; B 2 2 0 0; E" in
  check "diagnosed" true (has_code "cif-end-in-definition" diags);
  check_int "symbol committed" 1 (List.length ast.Ace_cif.Ast.symbols)

let test_unterminated_definition () =
  let ast, diags = lenient "DS 1; L ND; B 2 2 0 0;" in
  check "diagnosed" true (has_code "cif-unterminated-definition" diags);
  check_int "symbol committed" 1 (List.length ast.Ace_cif.Ast.symbols)

let test_max_errors_cap () =
  let soup = String.concat "" (List.init 50 (fun _ -> "Q; ")) ^ "E" in
  let _, diags = lenient ~max_errors:5 soup in
  check_int "five errors" 5 (List.length (errors diags));
  check "hint" true (has_code "too-many-errors" diags)

let test_lenient_never_raises_on_garbage () =
  List.iter
    (fun s ->
      match lenient s with
      | (_ : Ace_cif.Ast.file * Diag.t list) -> ()
      | exception e ->
          Alcotest.failf "lenient raised %s on %S" (Printexc.to_string e) s)
    [
      ""; ";"; "("; ")"; "D"; "DS"; "DF"; "DD"; "9"; "94"; "E in garbage";
      "L;"; "C;"; "B;"; "W;"; "R;"; "P;"; "M X;"; "-"; "--1"; "\x00\xff";
      "DS 0 0 0;"; "94 x 1;"; "9;"; "((((((";
      "DS 1; DS 2; DF; E"; "B 1 1 1 1; E";
    ]

(* ------------------------------------------------------------------ *)
(* Lenient semantic checking                                            *)
(* ------------------------------------------------------------------ *)

let design_lenient s =
  let ast, pdiags = lenient s in
  let d, sdiags = Design.of_ast_lenient ast in
  (d, pdiags @ sdiags)

let test_unknown_layer () =
  let d, diags = design_lenient "L ZZ; B 2 2 0 0; L ND; B 4 4 0 0; E" in
  check "diagnosed" true (has_code "sem-unknown-layer" diags);
  (* the ZZ shape is dropped, the ND shape survives *)
  check_int "one box" 1 (Design.count_boxes d)

let test_undefined_symbol_call () =
  let d, diags = design_lenient "L ND; B 2 2 0 0; C 7; E" in
  check "diagnosed" true (has_code "sem-undefined-symbol" diags);
  check_int "call dropped" 0 (Design.count_instances d)

let test_recursive_symbols () =
  let d, diags =
    design_lenient "DS 1; L ND; B 2 2 0 0; C 2; DF; DS 2; C 1; DF; C 1; E"
  in
  check "diagnosed" true (has_code "sem-recursive-symbol" diags);
  (* the cycle is broken but symbol 1's geometry is still reachable *)
  check_int "one box" 1 (Design.count_boxes d)

let test_self_recursion () =
  let _, diags = design_lenient "DS 1; C 1; DF; C 1; E" in
  check "diagnosed" true (has_code "sem-recursive-symbol" diags)

let test_duplicate_symbol () =
  let d, diags =
    design_lenient
      "DS 1; L ND; B 2 2 0 0; DF; DS 1; L ND; B 4 4 0 0; B 6 6 9 9; DF; C 1; E"
  in
  check "diagnosed" true (has_code "sem-duplicate-symbol" diags);
  (* first definition wins, as documented *)
  check_int "one box" 1 (Design.count_boxes d)

let test_degenerate_box () =
  let _, diags = design_lenient "L ND; B 0 2 0 0; E" in
  check "warned" true (has_code "sem-degenerate-box" diags);
  check "not an error" true (errors diags = [])

let test_degenerate_wire_and_flash () =
  (* found by the fuzz harness: zero-width wires pass of_ast but raise
     Invalid_argument deep in the box decomposer; the lenient design must
     drop them so extraction stays total *)
  let d, diags = design_lenient "L ND; W 0 0 0 10 0; R -4 5 5; B 2 2 0 0 0 0; E" in
  check "warned" true (has_code "sem-degenerate-box" diags);
  check "not an error" true (errors diags = []);
  check_int "all dropped" 0 (Design.count_boxes d);
  let circuit = Ace_core.Extractor.extract d in
  check "extraction total" true (Ace_netlist.Circuit.validate circuit = [])

let test_coordinate_overflow_guard () =
  let d, diags = design_lenient "L ND; B 2 2 2305843009213693951 0; E" in
  check "warned" true (has_code "sem-coordinate-overflow" diags);
  check_int "dropped" 0 (Design.count_boxes d);
  check "not an error" true (errors diags = [])

let test_bad_rotation () =
  let _, diags = design_lenient "DS 1; L ND; B 2 2 0 0; DF; C 1 R 1 1; E" in
  check "diagnosed" true (has_code "sem-bad-rotation" diags)

let test_lenient_design_extracts () =
  (* a recovered design must survive the full extraction pipeline *)
  let dir = List.find Sys.file_exists [ "../data"; "data" ] in
  let ic = open_in_bin (Filename.concat dir "broken.cif") in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let ast, pdiags = lenient text in
  let design, sdiags = Design.of_ast_lenient ast in
  check "parse diagnostics" true (errors pdiags <> []);
  check "semantic diagnostics" true (errors sdiags <> []);
  let circuit = Ace_core.Extractor.extract design in
  check "valid circuit" true (Ace_netlist.Circuit.validate circuit = []);
  (* the surviving good geometry is present *)
  check "salvaged geometry" true (Design.count_boxes design > 0)

(* ------------------------------------------------------------------ *)
(* Strict-vs-lenient agreement                                          *)
(* ------------------------------------------------------------------ *)

let agree_on_clean_source name text =
  match Parser.parse_string text with
  | exception Parser.Error _ -> Alcotest.failf "%s does not parse" name
  | strict_ast ->
      let lenient_ast, diags = lenient text in
      check (name ^ ": no diagnostics") true (diags = []);
      check (name ^ ": same AST") true (strict_ast = lenient_ast);
      let strict_design = Design.of_ast strict_ast in
      let lenient_design, sdiags = Design.of_ast_lenient lenient_ast in
      check (name ^ ": no semantic diagnostics") true (sdiags = []);
      check (name ^ ": same boxes") true
        (Design.count_boxes strict_design = Design.count_boxes lenient_design);
      check (name ^ ": same bbox") true
        (Design.bbox strict_design = Design.bbox lenient_design);
      check (name ^ ": same instances") true
        (Design.count_instances strict_design
        = Design.count_instances lenient_design)

let test_agreement_corpus () =
  let dir = List.find Sys.file_exists [ "../data"; "data" ] in
  let cifs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".cif"
           && not (String.starts_with ~prefix:"broken" f))
  in
  check "all four corpus files" true (List.length cifs >= 4);
  List.iter
    (fun f ->
      let ic = open_in_bin (Filename.concat dir f) in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      agree_on_clean_source f text)
    cifs

let test_agreement_errors () =
  (* on malformed inputs: strict fails iff lenient reports an error *)
  List.iter
    (fun s ->
      let _, diags = lenient s in
      let lenient_errs = errors diags <> [] in
      check (Printf.sprintf "agree on %S" s) true (strict_ok s = not lenient_errs))
    [
      "L ND; B 2 2 0 0; E"; "E"; ""; "Q; E"; "L ND; B 2 2 0; E";
      "DS 1; DF; E"; "DF; E"; "(x; E"; "L ND; B 2 2 0 0;";
    ]

let () =
  Alcotest.run "diag"
    [
      ( "diag",
        [
          Alcotest.test_case "text rendering" `Quick test_diag_text;
          Alcotest.test_case "json rendering" `Quick test_diag_json;
          Alcotest.test_case "severity order" `Quick test_diag_severity;
          Alcotest.test_case "collector cap" `Quick test_collector_cap;
        ] );
      ( "parser-recovery",
        [
          Alcotest.test_case "unterminated comment" `Quick
            test_unterminated_comment;
          Alcotest.test_case "truncated command" `Quick test_truncated_command;
          Alcotest.test_case "multiple errors, one run" `Quick
            test_multiple_errors_one_run;
          Alcotest.test_case "integer overflow (regression)" `Quick
            test_integer_overflow_regression;
          Alcotest.test_case "resync at DF" `Quick test_resync_at_df;
          Alcotest.test_case "E inside definition" `Quick
            test_end_inside_definition;
          Alcotest.test_case "unterminated definition" `Quick
            test_unterminated_definition;
          Alcotest.test_case "max-errors cap" `Quick test_max_errors_cap;
          Alcotest.test_case "never raises on garbage" `Quick
            test_lenient_never_raises_on_garbage;
        ] );
      ( "lenient-design",
        [
          Alcotest.test_case "unknown layer" `Quick test_unknown_layer;
          Alcotest.test_case "undefined symbol" `Quick
            test_undefined_symbol_call;
          Alcotest.test_case "recursive symbols" `Quick test_recursive_symbols;
          Alcotest.test_case "self recursion" `Quick test_self_recursion;
          Alcotest.test_case "duplicate symbol" `Quick test_duplicate_symbol;
          Alcotest.test_case "degenerate box" `Quick test_degenerate_box;
          Alcotest.test_case "degenerate wire and flash" `Quick
            test_degenerate_wire_and_flash;
          Alcotest.test_case "coordinate overflow" `Quick
            test_coordinate_overflow_guard;
          Alcotest.test_case "bad rotation" `Quick test_bad_rotation;
          Alcotest.test_case "broken.cif extracts" `Quick
            test_lenient_design_extracts;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "clean corpus" `Quick test_agreement_corpus;
          Alcotest.test_case "malformed snippets" `Quick test_agreement_errors;
        ] );
    ]
