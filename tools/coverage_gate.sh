#!/bin/sh
# coverage_gate.sh DIR EXPECTED_FILE
#
# Gate-only half of the coverage check: look for bisect_ppx .coverage
# files under DIR, summarize them, and fail if the line-coverage
# percentage is below the number in EXPECTED_FILE ('#' lines ignored).
#
# Skips with success when bisect-ppx-report is not installed or when no
# .coverage files were produced (uninstrumented build): the gate only
# binds where the tooling exists, so plain `dune runtest` keeps working
# in minimal containers.

dir=${1:-.}
expected_file=${2:-coverage.expected}

if ! command -v bisect-ppx-report >/dev/null 2>&1; then
  echo "coverage: bisect-ppx-report not installed; skipping gate"
  exit 0
fi
if ! ls "$dir"/*.coverage >/dev/null 2>&1; then
  echo "coverage: no .coverage files in $dir (uninstrumented build); skipping gate"
  echo "coverage: run via tools/coverage.sh or 'dune build @coverage --instrument-with bisect_ppx'"
  exit 0
fi

summary=$(bisect-ppx-report summary --coverage-path "$dir") || exit 1
echo "coverage: $summary"
pct=$(printf '%s\n' "$summary" | sed -n 's/.*(\([0-9][0-9.]*\)%).*/\1/p')
expected=$(grep -v '^#' "$expected_file" | head -n 1)
if [ -z "$pct" ] || [ -z "$expected" ]; then
  echo "coverage: could not parse summary or $expected_file" >&2
  exit 1
fi
if awk -v p="$pct" -v e="$expected" 'BEGIN { exit !(p + 0 >= e + 0) }'; then
  echo "coverage: ${pct}% >= expected ${expected}% - OK"
else
  echo "coverage: ${pct}% < expected ${expected}% - FAIL" >&2
  echo "coverage: add tests for the uncovered lines, or lower coverage.expected with justification" >&2
  exit 1
fi
