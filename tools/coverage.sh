#!/bin/sh
# CI coverage step: run the whole test suite with lib/core and lib/trace
# instrumented by bisect_ppx and gate the line coverage of those
# libraries against coverage.expected (see tools/coverage_gate.sh for the
# comparison; only the libraries carrying an (instrumentation) stanza
# contribute, so the summary *is* lib/core + lib/trace).
#
# Skips with success when bisect_ppx is not installed so the script is
# safe to call unconditionally from CI and from minimal dev containers.

set -e
cd "$(dirname "$0")/.."

if ! command -v bisect-ppx-report >/dev/null 2>&1; then
  echo "coverage: bisect-ppx-report not installed; skipping gate"
  exit 0
fi

rm -rf _coverage
mkdir -p _coverage
BISECT_FILE="$PWD/_coverage/bisect" \
  dune runtest --instrument-with bisect_ppx --force
sh tools/coverage_gate.sh _coverage coverage.expected
