#!/bin/sh
# CI performance step: compare a fresh `bench --table extract --table
# lvs --table serve` run against the checked-in BENCH_extract.json and
# fail when any gated wall time regressed more than the threshold
# (default 15%, see bench/main.exe --gate): flat-extraction wall
# (wall_j1_seconds) per chip, the devices-phase wall within it
# (devices_phase_j1_seconds), the 2-D tiled slowest-tile+stitch projection
# (projected_wall_tiled_seconds),
# flat and hierarchical LVS compare walls per workload, and warm
# serve-cache hits per chip.
#
# Wall times at the gate's small scale are milliseconds, so a failing
# comparison is retried before it counts: transient scheduler noise
# passes on a retry, a real regression keeps failing.  When no baseline
# exists yet the script generates one and exits successfully — commit
# the file to arm the gate.
#
# Environment knobs: ACE_BENCH_SCALE (default 0.05, must match the
# baseline), ACE_BENCH_THRESHOLD (default 0.15), ACE_BENCH_RETRIES
# (default 3), ACE_BENCH_REPS (default 3, best-of-N walls on both
# sides of the comparison), ACE_BENCH_EXE (pre-built bench binary to
# use instead of building one).
#
# Also runs as the `@perf` dune alias (see bench/dune): dune supplies
# the already-built binary via ACE_BENCH_EXE and runs the action from
# its own sandbox, so in that mode the script must neither cd to the
# source root nor invoke a nested dune.

set -u

BENCH=${ACE_BENCH_EXE:-}
case "$BENCH" in
  # a bare binary name (dune expands %{exe:main.exe} to just "main.exe")
  # must not fall through to PATH lookup
  */* | '') ;;
  *) BENCH=./$BENCH ;;
esac
if [ -z "${INSIDE_DUNE:-}" ]; then
  cd "$(dirname "$0")/.."
fi

BASELINE=${1:-BENCH_extract.json}
SCALE=${ACE_BENCH_SCALE:-0.05}
THRESHOLD=${ACE_BENCH_THRESHOLD:-0.15}
RETRIES=${ACE_BENCH_RETRIES:-3}
REPS=${ACE_BENCH_REPS:-3}

if [ -z "$BENCH" ]; then
  if ! command -v dune >/dev/null 2>&1; then
    echo "bench_gate: dune not installed; skipping gate"
    exit 0
  fi

  dune build bench/main.exe 2>&1 || {
    echo "bench_gate: bench build failed"
    exit 1
  }
  BENCH=_build/default/bench/main.exe
fi

if [ ! -f "$BASELINE" ]; then
  echo "bench_gate: no baseline at $BASELINE — generating one; commit it to arm the gate"
  "$BENCH" --table extract --table lvs --table serve --scale "$SCALE" \
    --reps "$REPS" --json "$BASELINE" >/dev/null
  exit 0
fi

fresh=$(mktemp /tmp/bench_gate.XXXXXX.json)
log=$(mktemp /tmp/bench_gate.XXXXXX.log)
trap 'rm -f "$fresh" "$log"' EXIT

attempt=1
while [ "$attempt" -le "$RETRIES" ]; do
  if "$BENCH" --table extract --table lvs --table serve --scale "$SCALE" \
    --reps "$REPS" --json "$fresh" \
    --gate "$BASELINE" --gate-threshold "$THRESHOLD" >"$log" 2>&1; then
    grep -v '^chip scale' "$log" | sed -n '/regression gate/,$p'
    echo "bench_gate: passed (attempt $attempt/$RETRIES)"
    exit 0
  fi
  echo "bench_gate: attempt $attempt/$RETRIES reported a regression"
  attempt=$((attempt + 1))
done

# the full log, not just the gate table: a failure here may be the bench
# run itself dying, and CI only keeps this output
cat "$log"
echo "bench_gate: FAILED — regression persisted across $RETRIES attempts"
exit 1
